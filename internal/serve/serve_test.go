package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ppamcp/internal/cli"
	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/virt"
)

// postSolve sends a SolveRequest and decodes the reply.
func postSolve(t *testing.T, c *http.Client, url string, req SolveRequest) (int, *SolveResponse, *ErrorResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		var sr SolveResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("decode response: %v\n%s", err, data)
		}
		return resp.StatusCode, &sr, nil, resp.Header
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("decode %d error body: %v\n%s", resp.StatusCode, err, data)
	}
	return resp.StatusCode, nil, &er, resp.Header
}

func rawGraph(t *testing.T, g *graph.Graph) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func rawGen(t *testing.T, w cli.Workload) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkResponse verifies a SolveResponse against the sequential reference
// (Bellman-Ford distances, and a full witness-path check on the returned
// next-hop pointers).
func checkResponse(t *testing.T, g *graph.Graph, sr *SolveResponse, dests []int) {
	t.Helper()
	if sr.N != g.N {
		t.Fatalf("response n = %d, want %d", sr.N, g.N)
	}
	if len(sr.Results) != len(dests) {
		t.Fatalf("got %d results, want %d", len(sr.Results), len(dests))
	}
	for k, dr := range sr.Results {
		if dr.Dest != dests[k] {
			t.Fatalf("result %d is for dest %d, want %d", k, dr.Dest, dests[k])
		}
		want, err := graph.BellmanFord(g, dr.Dest)
		if err != nil {
			t.Fatal(err)
		}
		res := graph.Result{Dest: dr.Dest, Dist: make([]int64, g.N), Next: dr.Next, Iterations: dr.Iterations}
		for i, d := range dr.Dist {
			if d < 0 {
				res.Dist[i] = graph.NoEdge
			} else {
				res.Dist[i] = d
			}
		}
		if !graph.SameDistances(&res, want) {
			t.Fatalf("dest %d: distances diverge from Bellman-Ford", dr.Dest)
		}
		if err := graph.CheckResult(g, &res); err != nil {
			t.Fatalf("dest %d: %v", dr.Dest, err)
		}
	}
}

// leakCheck fails if the goroutine count has not returned to (roughly)
// base within a grace period.
func leakCheck(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 { // tolerate runtime helper goroutines
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s", n, base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestE2EConcurrentClients is the acceptance test: 32 concurrent clients
// mixing inline graphs and generator specs, every response checked
// against the sequential reference, followed by a graceful shutdown with
// no leaked goroutines.
func TestE2EConcurrentClients(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	srv := New(Config{Workers: 4, QueueDepth: 64, PoolCap: 16})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	const clients = 32
	const perClient = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				// A small set of distinct workloads so the session pool
				// and the coalescer both see repeats.
				seed := int64(1 + (c+r)%4)
				spec := cli.Workload{Gen: "connected", N: 16, Density: 0.3, MaxW: 9, Seed: seed}
				g, err := spec.Build()
				if err != nil {
					errs <- err
					return
				}
				dests := []int{c % g.N, (c + 7) % g.N}
				var req SolveRequest
				if c%2 == 0 {
					req = SolveRequest{Graph: rawGraph(t, g), Dests: dests}
				} else {
					req = SolveRequest{Gen: rawGen(t, spec), Dests: dests}
				}
				code, sr, er, _ := postSolve(t, client, ts.URL, req)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d: %v", c, code, er)
					return
				}
				if sr.Batched < 1 || sr.Bits == 0 {
					errs <- fmt.Errorf("client %d: implausible response meta %+v", c, sr)
					return
				}
				checkResponse(t, g, sr, dests)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The pool must have been exercised: 96 requests over 4 distinct
	// (n, h) workloads cannot all be cold builds.
	if st := srv.pool.Stats(); st.Hits == 0 {
		t.Errorf("pool saw no hits across %d requests: %+v", clients*perClient, st)
	}

	// Observability surface.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`ppaserved_requests_total{path="/v1/solve",code="200"} 96`,
		"ppaserved_solve_latency_seconds_bucket",
		"ppaserved_session_pool_hits_total",
		"ppaserved_queue_depth",
		"ppaserved_machine_bus_cycles_total",
		"ppaserved_machine_pe_ops_total",
		"ppaserved_solves_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}

	// Graceful shutdown: handlers first, then the solver drain.
	ts.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	leakCheck(t, baseGoroutines)
}

// TestDeadline verifies a request deadline beats a long solve: the
// handler answers 504 and the worker abandons the DP between iterations.
func TestDeadline(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	// A 160-vertex chain to its far end needs 160 DP rounds on a 25600-PE
	// machine — far beyond a 1 ms budget.
	g := graph.GenChain(160, 3)
	code, _, er, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{
		Graph: rawGraph(t, g), Dests: []int{159}, TimeoutMS: 1,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", code, er)
	}

	// The session released by the dead request must not poison service:
	// the same solve with a generous deadline succeeds.
	code, sr, er, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{
		Graph: rawGraph(t, g), Dests: []int{159},
	})
	if code != http.StatusOK {
		t.Fatalf("follow-up status = %d (%v), want 200", code, er)
	}
	checkResponse(t, g, sr, []int{159})
}

// TestOverload429 fills the bounded queue and expects load shedding with
// Retry-After, while every accepted request still gets a correct answer.
func TestOverload429(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 1, MaxBatch: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	const burst = 24
	type outcome struct {
		code  int
		retry string
	}
	var wg sync.WaitGroup
	outcomes := make([]outcome, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct weights per request: no coalescing, every request
			// needs its own queue slot. Long chains (many DP iterations,
			// n=128 fabric) keep the single worker busy for milliseconds
			// per job — far longer than the burst takes to arrive — so
			// the depth-1 queue must shed.
			g := graph.GenChain(128, int64(i+1))
			code, sr, _, hdr := postSolve(t, ts.Client(), ts.URL, SolveRequest{
				Graph: rawGraph(t, g), Dests: []int{127},
			})
			outcomes[i] = outcome{code, hdr.Get("Retry-After")}
			if code == http.StatusOK {
				checkResponse(t, g, sr, []int{127})
			}
		}(i)
	}
	wg.Wait()
	var ok, shed int
	for i, o := range outcomes {
		switch o.code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if o.retry == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, o.code)
		}
	}
	if ok == 0 || shed == 0 {
		t.Errorf("burst of %d: %d ok, %d shed; want both nonzero", burst, ok, shed)
	}
}

// TestQueueCoalescing pins the micro-batching contract at the queue
// level, where it is deterministic: with no worker draining, jobs for the
// same graph join one batch and jobs for a different graph claim a new
// slot.
func TestQueueCoalescing(t *testing.T) {
	q := newQueue(4)
	gA := graph.GenChain(8, 3)
	gB := graph.GenChain(8, 4) // same size, different weights
	mk := func() *job { return &job{ctx: context.Background(), dests: []int{0}, done: make(chan jobDone, 1)} }

	for i := 0; i < 3; i++ {
		if err := q.enqueue(mk(), gA, 8, 16); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.enqueue(mk(), gB, 8, 16); err != nil {
		t.Fatal(err)
	}
	// Same weights but different width must not coalesce either.
	if err := q.enqueue(mk(), gA, 16, 16); err != nil {
		t.Fatal(err)
	}
	if q.depth() != 3 {
		t.Fatalf("queue depth = %d, want 3 (A-batch, B-batch, A@16-batch)", q.depth())
	}
	b1 := <-q.ch
	q.take(b1)
	if len(b1.jobs) != 3 || !sameGraph(b1.g, gA) {
		t.Fatalf("first batch has %d jobs for %v, want 3 for graph A", len(b1.jobs), b1.g)
	}
	if _, coalesced := q.stats(); coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2", coalesced)
	}
	// A taken batch is closed: the same graph now starts a fresh batch.
	if err := q.enqueue(mk(), gA, 8, 16); err != nil {
		t.Fatal(err)
	}
	b2 := <-q.ch
	q.take(b2)
	if sameGraph(b2.g, gA) {
		t.Fatalf("expected graph B batch next in FIFO")
	}

	// MaxBatch bound: a full batch stops accepting joiners.
	qq := newQueue(4)
	for i := 0; i < 3; i++ {
		if err := qq.enqueue(mk(), gA, 8, 2); err != nil {
			t.Fatal(err)
		}
	}
	if qq.depth() != 2 {
		t.Fatalf("maxBatch=2: depth = %d, want 2", qq.depth())
	}

	// Admission: depth-1 queue sheds the second distinct graph.
	q1 := newQueue(1)
	if err := q1.enqueue(mk(), gA, 8, 16); err != nil {
		t.Fatal(err)
	}
	if err := q1.enqueue(mk(), gB, 8, 16); err != ErrOverloaded {
		t.Fatalf("overflow err = %v, want ErrOverloaded", err)
	}
	// ... but the same graph still coalesces into the queued batch.
	if err := q1.enqueue(mk(), gA, 8, 16); err != nil {
		t.Fatalf("coalesce into full queue: %v", err)
	}
	q1.shutdown()
	if err := q1.enqueue(mk(), gA, 8, 16); err != ErrShuttingDown {
		t.Fatalf("post-shutdown err = %v, want ErrShuttingDown", err)
	}
}

// TestPool pins checkout semantics: miss then hit, capacity discard, and
// a Reload failure surfacing as an error.
func TestPool(t *testing.T) {
	p := NewPool(1, 1, 0)
	g1 := graph.GenChain(8, 3)
	g2 := graph.GenChain(8, 5)

	s1, hit, err := p.Get(g1, 8)
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	s2, hit, err := p.Get(g2, 8)
	if err != nil || hit {
		t.Fatalf("concurrent Get: hit=%v err=%v", hit, err)
	}
	p.Put(s1)
	p.Put(s2) // over capacity: dropped
	st := p.Stats()
	if st.Idle != 1 || st.Discards != 1 {
		t.Fatalf("stats after puts: %+v", st)
	}
	s3, hit, err := p.Get(g2, 8)
	if err != nil || !hit {
		t.Fatalf("warm Get: hit=%v err=%v", hit, err)
	}
	res, err := s3.Solve(7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.BellmanFord(g2, 7)
	if !graph.SameDistances(&res.Result, want) {
		t.Fatal("recycled session solved the wrong graph")
	}
	p.Put(s3)

	// A graph whose costs exceed h fails cleanly on the warm path too.
	wide := graph.GenChain(8, 1)
	wide.SetEdge(0, 1, 1000)
	if _, _, err := p.Get(wide, 8); err == nil {
		t.Fatal("pool accepted weights that overflow h=8")
	}
}

// TestPoolKeysFabricOptions is the regression test for the pool key: it
// used to be {n, h} only, so a session built on one fabric shape could be
// handed out for a request expecting another. Interchangeability must
// also require equal fabric-relevant options (PhysicalSide,
// ReferenceKernels), keyed by what the session was actually built with.
func TestPoolKeysFabricOptions(t *testing.T) {
	g := graph.GenChain(8, 3)

	// A foreign session with the same {n, h} but a different fabric shape
	// (block-mapped 8-on-4, reference kernels) parked in a direct pool
	// must NOT satisfy a direct checkout.
	direct := NewPool(4, 1, 0)
	odd, err := core.NewSession(g, core.Options{Bits: 8, PhysicalSide: 4, ReferenceKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	direct.Put(odd)
	s, hit, err := direct.Get(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("direct checkout satisfied by a virtualized reference-kernel session")
	}
	if s.Options() != (core.Options{Bits: 8, Workers: 1}) {
		t.Fatalf("direct pool built options %+v", s.Options())
	}
	direct.Put(s)

	// A virtualizing pool keys its own sessions consistently: put then
	// get of a tileable graph is a hit, and the session really is
	// block-mapped.
	vp := NewPool(4, 1, 4)
	s1, hit, err := vp.Get(g, 8)
	if err != nil || hit {
		t.Fatalf("cold virtualized Get: hit=%v err=%v", hit, err)
	}
	if s1.Options().PhysicalSide != 4 {
		t.Fatalf("virtualizing pool built PhysicalSide=%d, want 4", s1.Options().PhysicalSide)
	}
	if _, ok := s1.Fabric().(*virt.Machine); !ok {
		t.Fatalf("virtualizing pool built fabric %T, want *virt.Machine", s1.Fabric())
	}
	vp.Put(s1)
	s2, hit, err := vp.Get(g, 8)
	if err != nil || !hit {
		t.Fatalf("warm virtualized Get: hit=%v err=%v", hit, err)
	}
	res, err := s2.Solve(7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.BellmanFord(g, 7)
	if !graph.SameDistances(&res.Result, want) {
		t.Fatal("virtualized session solved the wrong answer")
	}
	vp.Put(s2)

	// Graphs the physical side cannot tile fall back to direct execution
	// under a distinct key — they neither fail nor poach virt sessions.
	g6 := graph.GenChain(6, 3)
	s3, hit, err := vp.Get(g6, 8)
	if err != nil || hit {
		t.Fatalf("untileable Get: hit=%v err=%v", hit, err)
	}
	if s3.Options().PhysicalSide != 0 {
		t.Fatalf("untileable graph got PhysicalSide=%d, want 0 (direct)", s3.Options().PhysicalSide)
	}
	vp.Put(s3)
	vp.Close()
	direct.Close()
}

// TestPanicIsolation injects a panic into one request's solve and
// verifies the blast radius: that request gets a 500, the poisoned
// session never returns to the pool, and the service keeps answering.
func TestPanicIsolation(t *testing.T) {
	srv := New(Config{Workers: 1})
	var once sync.Once
	srv.hookBeforeSolve = func(dest int) {
		if dest == 3 {
			var boom bool
			once.Do(func() { boom = true })
			if boom {
				panic("injected test panic")
			}
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	g := graph.GenChain(8, 3)
	code, _, er, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Graph: rawGraph(t, g), Dests: []int{3}})
	if code != http.StatusInternalServerError || !strings.Contains(er.Error, "panicked") {
		t.Fatalf("poisoned request: status %d, err %v", code, er)
	}
	code, sr, er, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Graph: rawGraph(t, g), Dests: []int{3, 7}})
	if code != http.StatusOK {
		t.Fatalf("follow-up: status %d (%v)", code, er)
	}
	checkResponse(t, g, sr, []int{3, 7})
	if st := srv.pool.Stats(); st.Hits != 0 {
		t.Errorf("poisoned session was repooled: %+v", st)
	}
}

// TestBadRequests walks the admission-control error surface.
func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1, MaxVertices: 64, MaxDests: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	g := graph.GenChain(4, 3)

	cases := []struct {
		name string
		req  SolveRequest
		want int
	}{
		{"no graph", SolveRequest{Dests: []int{0}}, 400},
		{"both graph and gen", SolveRequest{Graph: rawGraph(t, g), Gen: json.RawMessage(`{"gen":"chain"}`), Dests: []int{0}}, 400},
		{"no dests", SolveRequest{Graph: rawGraph(t, g)}, 400},
		{"dest out of range", SolveRequest{Graph: rawGraph(t, g), Dests: []int{4}}, 400},
		{"negative dest", SolveRequest{Graph: rawGraph(t, g), Dests: []int{-1}}, 400},
		{"too many dests", SolveRequest{Graph: rawGraph(t, g), Dests: []int{0, 1, 2, 3, 0}}, 400},
		{"oversized inline graph", SolveRequest{Graph: json.RawMessage(`{"n":4096,"edges":[]}`), Dests: []int{0}}, 400},
		{"oversized gen", SolveRequest{Gen: json.RawMessage(`{"gen":"chain","n":4096}`), Dests: []int{0}}, 400},
		{"unknown generator", SolveRequest{Gen: json.RawMessage(`{"gen":"hypergraph"}`), Dests: []int{0}}, 400},
		{"bad gen params", SolveRequest{Gen: json.RawMessage(`{"gen":"random","density":7}`), Dests: []int{0}}, 400},
		{"negative weight inline", SolveRequest{Graph: json.RawMessage(`{"n":2,"edges":[[0,1,-5]]}`), Dests: []int{0}}, 400},
		{"excessive bits", SolveRequest{Graph: rawGraph(t, g), Dests: []int{0}, Bits: 63}, 400},
	}
	for _, c := range cases {
		code, _, er, _ := postSolve(t, ts.Client(), ts.URL, c.req)
		if code != c.want {
			t.Errorf("%s: status = %d (%v), want %d", c.name, code, er, c.want)
		}
	}

	// Method check.
	resp, err := ts.Client().Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

// TestShutdownRefusesNewWork: after Shutdown the surface answers 503 on
// solve and healthz (load balancers drain on that signal).
func TestShutdownRefusesNewWork(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	g := graph.GenChain(4, 3)
	code, _, _, _ := postSolve(t, ts.Client(), ts.URL, SolveRequest{Graph: rawGraph(t, g), Dests: []int{0}})
	if code != http.StatusServiceUnavailable {
		t.Errorf("solve after shutdown = %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
}

// TestPickBits pins the width-quantization policy pooled sessions rely on.
func TestPickBits(t *testing.T) {
	small := graph.GenChain(8, 3) // needs ~5 bits -> quantized to 8
	h, err := PickBits(small, 0)
	if err != nil || h != 8 {
		t.Errorf("PickBits(small, auto) = %d, %v; want 8", h, err)
	}
	h, err = PickBits(small, 11) // explicit widths are honored exactly
	if err != nil || h != 11 {
		t.Errorf("PickBits(small, 11) = %d, %v; want 11", h, err)
	}
	if _, err = PickBits(small, 200); err == nil {
		t.Error("pickBits accepted h=200")
	}
	wide := graph.New(2)
	wide.SetEdge(0, 1, int64(1)<<62)
	if _, err = PickBits(wide, 0); err == nil {
		t.Error("pickBits accepted costs beyond the machine maximum")
	}
}

// TestHealthzBody pins the /healthz JSON contract the router tier
// consumes: 200 + {"status":"ok",...} while serving, 503 +
// {"status":"draining","draining":true,...} once shutdown begins — the
// status-code contract load balancers drain on is unchanged.
func TestHealthzBody(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func() (int, HealthStatus) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hs HealthStatus
		if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
			t.Fatalf("healthz body is not JSON: %v", err)
		}
		return resp.StatusCode, hs
	}

	code, hs := get()
	if code != http.StatusOK || hs.Status != "ok" || hs.Draining {
		t.Errorf("healthz while serving = %d %+v, want 200 ok", code, hs)
	}
	if hs.QueueDepth != 0 || hs.InflightBatches != 0 {
		t.Errorf("idle server reports load: %+v", hs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, hs = get()
	if code != http.StatusServiceUnavailable || hs.Status != "draining" || !hs.Draining {
		t.Errorf("healthz while draining = %d %+v, want 503 draining", code, hs)
	}
}
