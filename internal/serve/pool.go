package serve

import (
	"sync"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
)

// poolKey identifies interchangeable sessions: same array side, same word
// width, same fabric shape. Any graph with n vertices whose costs fit in
// h bits can run on any session with this key after a Reload. The
// fabric-relevant options are part of the key: a block-mapped session
// (PhysicalSide) simulates a different machine than a direct one, and a
// reference-kernel session reports the same answers on a different host
// path — handing either out for the other would silently change the
// metrics and performance a caller observes.
type poolKey struct {
	n    int
	h    uint
	phys int  // virtualization physical side; 0 = direct execution
	ref  bool // interpretive reference kernels forced
}

// keyFor normalizes the fabric options the way core.NewSession applies
// them: PhysicalSide engages block-mapped execution only when it is
// positive, smaller than n, and divides n — otherwise the session runs
// direct and must pool with the direct ones.
func keyFor(n int, h uint, opt core.Options) poolKey {
	phys := opt.PhysicalSide
	if phys <= 0 || phys >= n || n%phys != 0 {
		phys = 0
	}
	return poolKey{n: n, h: h, phys: phys, ref: opt.ReferenceKernels}
}

// Pool recycles warm core.Sessions across requests. A checkout either
// pops an idle session and re-loads it with the request's weights (hit:
// one weight DMA, no allocation) or builds a fresh machine (miss: the
// cost the pool exists to amortize). Sessions are returned after use
// unless the pool is full or the session is suspect (a panicked solve).
type Pool struct {
	mu           sync.Mutex
	idle         map[poolKey][]*core.Session
	total        int
	cap          int
	ringWorkers  int
	physicalSide int

	hits, misses, discards int64
}

// PoolStats is a snapshot of pool behaviour for /metrics.
type PoolStats struct {
	Hits, Misses, Discards int64
	Idle                   int
}

// NewPool returns a pool keeping at most cap idle sessions in total.
// ringWorkers is the per-session simulator ring fan-out (core
// Options.Workers; 0/1 = serial), composing machine-level parallelism
// with the service's session-level concurrency. physicalSide, when
// nonzero, builds block-mapped sessions (core Options.PhysicalSide) for
// graphs whose vertex count it divides; other graphs fall back to direct
// execution, under a distinct pool key.
func NewPool(cap, ringWorkers, physicalSide int) *Pool {
	return &Pool{
		idle:         make(map[poolKey][]*core.Session),
		cap:          cap,
		ringWorkers:  ringWorkers,
		physicalSide: physicalSide,
	}
}

// options returns the session options the pool builds for an n-vertex
// graph at width h, with PhysicalSide already normalized so that
// core.NewSession never sees a non-divisor side.
func (p *Pool) options(n int, h uint) core.Options {
	opt := core.Options{Bits: h, Workers: p.ringWorkers, PhysicalSide: p.physicalSide}
	opt.PhysicalSide = keyFor(n, h, opt).phys
	return opt
}

// Get checks out a session for g at word width h, reporting whether it
// was a pool hit. The caller owns the session until Put.
func (p *Pool) Get(g *graph.Graph, h uint) (*core.Session, bool, error) {
	opt := p.options(g.N, h)
	key := keyFor(g.N, h, opt)
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		p.idle[key] = list[:len(list)-1]
		p.total--
		p.mu.Unlock()
		if err := s.Reload(g); err != nil {
			// The graph does not fit this width (e.g. weights too wide
			// for h). A fresh build would fail identically; report it.
			s.Close()
			p.mu.Lock()
			p.discards++
			p.mu.Unlock()
			return nil, false, err
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return s, true, nil
	}
	p.misses++
	p.mu.Unlock()
	s, err := core.NewSession(g, opt)
	if err != nil {
		return nil, false, err
	}
	return s, false, nil
}

// Put returns a session to the pool; when the pool is full the session is
// closed (stopping its ring workers) and dropped for the GC.
func (p *Pool) Put(s *core.Session) {
	// Key by the session's own build options, not the pool's current
	// configuration: a session checked out under one fabric shape must
	// come back under the same one.
	key := keyFor(s.N(), s.Bits(), s.Options())
	p.mu.Lock()
	if p.total >= p.cap {
		p.discards++
		p.mu.Unlock()
		s.Close()
		return
	}
	p.idle[key] = append(p.idle[key], s)
	p.total++
	p.mu.Unlock()
}

// Close drains the pool, closing every idle session (deterministic ring
// worker shutdown). The pool stays usable; subsequent Gets miss.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[poolKey][]*core.Session)
	p.total = 0
	p.mu.Unlock()
	for _, list := range idle {
		for _, s := range list {
			s.Close()
		}
	}
}

// Stats returns a consistent snapshot.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Discards: p.discards, Idle: p.total}
}
