package serve

import (
	"sync"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
)

// poolKey identifies interchangeable sessions: same array side, same word
// width. Any graph with n vertices whose costs fit in h bits can run on
// any session with this key after a Reload.
type poolKey struct {
	n int
	h uint
}

// Pool recycles warm core.Sessions across requests. A checkout either
// pops an idle session and re-loads it with the request's weights (hit:
// one weight DMA, no allocation) or builds a fresh machine (miss: the
// cost the pool exists to amortize). Sessions are returned after use
// unless the pool is full or the session is suspect (a panicked solve).
type Pool struct {
	mu          sync.Mutex
	idle        map[poolKey][]*core.Session
	total       int
	cap         int
	ringWorkers int

	hits, misses, discards int64
}

// PoolStats is a snapshot of pool behaviour for /metrics.
type PoolStats struct {
	Hits, Misses, Discards int64
	Idle                   int
}

// NewPool returns a pool keeping at most cap idle sessions in total.
// ringWorkers is the per-session simulator ring fan-out (core
// Options.Workers; 0/1 = serial), composing machine-level parallelism
// with the service's session-level concurrency.
func NewPool(cap, ringWorkers int) *Pool {
	return &Pool{idle: make(map[poolKey][]*core.Session), cap: cap, ringWorkers: ringWorkers}
}

// Get checks out a session for g at word width h, reporting whether it
// was a pool hit. The caller owns the session until Put.
func (p *Pool) Get(g *graph.Graph, h uint) (*core.Session, bool, error) {
	key := poolKey{g.N, h}
	p.mu.Lock()
	if list := p.idle[key]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		p.idle[key] = list[:len(list)-1]
		p.total--
		p.mu.Unlock()
		if err := s.Reload(g); err != nil {
			// The graph does not fit this width (e.g. weights too wide
			// for h). A fresh build would fail identically; report it.
			s.Close()
			p.mu.Lock()
			p.discards++
			p.mu.Unlock()
			return nil, false, err
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return s, true, nil
	}
	p.misses++
	p.mu.Unlock()
	s, err := core.NewSession(g, core.Options{Bits: h, Workers: p.ringWorkers})
	if err != nil {
		return nil, false, err
	}
	return s, false, nil
}

// Put returns a session to the pool; when the pool is full the session is
// closed (stopping its ring workers) and dropped for the GC.
func (p *Pool) Put(s *core.Session) {
	key := poolKey{s.N(), s.Bits()}
	p.mu.Lock()
	if p.total >= p.cap {
		p.discards++
		p.mu.Unlock()
		s.Close()
		return
	}
	p.idle[key] = append(p.idle[key], s)
	p.total++
	p.mu.Unlock()
}

// Close drains the pool, closing every idle session (deterministic ring
// worker shutdown). The pool stays usable; subsequent Gets miss.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = make(map[poolKey][]*core.Session)
	p.total = 0
	p.mu.Unlock()
	for _, list := range idle {
		for _, s := range list {
			s.Close()
		}
	}
}

// Stats returns a consistent snapshot.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Discards: p.discards, Idle: p.total}
}
