// Package serve is the solver service: an HTTP/JSON daemon that amortizes
// the paper's expensive per-graph setup (fabric construction, coordinate
// masks, weight loading) across many minimum-cost-path queries.
//
// The core observation is that core.Session already splits the work the
// way a server wants it split: building an n x n machine is costly, while
// a warm Solve is cheap (~1.8 ms at n=64). The service therefore keeps a
// pool of warm sessions keyed by array size n and word width h, re-loads
// a checked-out session with each request's weights (Session.Reload, no
// re-allocation), and coalesces queued requests for the *same* graph into
// one session checkout (micro-batching), so a burst of routing queries
// against one topology pays for one weight DMA.
//
// Around that core sits the production envelope: a bounded admission
// queue that sheds load with 429 + Retry-After instead of collapsing,
// per-request deadlines propagated via context.Context and observed
// between DP iterations (a dead client cannot pin a session), panic
// isolation per request (a poisoned session is discarded, not repooled),
// graceful shutdown that drains in-flight solves, and an observability
// surface (/healthz, /metrics) exposing request counts, latency
// histograms, pool and queue behaviour, and the paper's cost-model
// counters (bus cycles, wired-OR cycles, PE ops) aggregated per endpoint.
package serve

import (
	"encoding/json"
	"fmt"

	"ppamcp/internal/cli"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// SolveRequest is the body of POST /v1/solve. Exactly one of Graph (an
// inline graph in the graph JSON wire format) or Gen (a named generator
// spec, the JSON form of the CLI workload flags) must be set. Both are
// kept as raw JSON so admission checks run before any n^2 allocation.
type SolveRequest struct {
	// Graph is an inline {"n": ..., "edges": [[i,j,w], ...]} graph.
	Graph json.RawMessage `json:"graph,omitempty"`
	// Gen is a generator spec: {"gen":"connected","n":64,"seed":7,...}.
	// Fields follow internal/cli flag names; omitted fields keep the CLI
	// defaults. File-based workloads are not reachable from the wire.
	Gen json.RawMessage `json:"gen,omitempty"`
	// Dests lists the destination vertices to solve for.
	Dests []int `json:"dests"`
	// Bits forces the machine word width h (0 = auto, quantized upward
	// so same-size requests share pooled sessions).
	Bits uint `json:"bits,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = server
	// default; capped at the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BuildGraph materializes the request's graph, enforcing maxN before the
// dense matrix is allocated.
func (r *SolveRequest) BuildGraph(maxN int) (*graph.Graph, error) {
	switch {
	case len(r.Graph) > 0 && len(r.Gen) > 0:
		return nil, fmt.Errorf("request has both graph and gen; want exactly one")
	case len(r.Graph) > 0:
		// Probe the header first: an inline {"n": 8192} with no edges is a
		// few bytes of JSON but an n^2 matrix on the heap.
		var probe struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(r.Graph, &probe); err != nil {
			return nil, fmt.Errorf("graph: %v", err)
		}
		if probe.N > maxN {
			return nil, fmt.Errorf("graph: n = %d exceeds server limit %d", probe.N, maxN)
		}
		g := new(graph.Graph)
		if err := json.Unmarshal(r.Graph, g); err != nil {
			return nil, err
		}
		return g, nil
	case len(r.Gen) > 0:
		w := cli.Default()
		if err := json.Unmarshal(r.Gen, &w); err != nil {
			return nil, fmt.Errorf("gen: %v", err)
		}
		w.File = "" // defence in depth; the json tag already blocks it
		if w.N > maxN || w.Rows*w.Cols > maxN {
			return nil, fmt.Errorf("gen: n = %d exceeds server limit %d", w.N, maxN)
		}
		g, err := w.Build()
		if err != nil {
			return nil, fmt.Errorf("gen: %v", err)
		}
		if g.N > maxN {
			return nil, fmt.Errorf("gen: built %d vertices, exceeds server limit %d", g.N, maxN)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("request needs a graph or a gen spec")
	}
}

// DestResult is the solution for one destination: Dist[i] is the minimum
// path cost from vertex i to Dest (-1 when unreachable), Next[i] the next
// hop on that path (-1 at the destination and on unreachable vertices),
// and Iterations the DP round count p+1 the solve converged in.
type DestResult struct {
	Dest       int     `json:"dest"`
	Dist       []int64 `json:"dist"`
	Next       []int   `json:"next"`
	Iterations int     `json:"iterations"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	N       int          `json:"n"`
	Bits    uint         `json:"bits"`
	Results []DestResult `json:"results"`
	// Cost is the abstract machine cost of the solves that produced this
	// response. Solves shared with coalesced requests for the same graph
	// are charged to every request that consumed them.
	Cost ppa.Metrics `json:"cost"`
	// PoolHit reports whether the request ran on a recycled warm session.
	PoolHit bool `json:"pool_hit"`
	// Batched is the number of requests served by the session checkout
	// that served this one (1 = no coalescing happened).
	Batched int `json:"batched"`
}

// AllPairsRequest is the body of POST /v1/allpairs: one graph (inline or
// generated, as in SolveRequest). With no destination list the server
// sweeps every destination 0..n-1 on one warm session and streams the
// rows back as NDJSON; an optional dests list restricts the sweep to that
// subset (distinct, in range, streamed in the given order) so clients can
// take a partial table without paying for all n rows. Width and deadline
// semantics match /v1/solve.
type AllPairsRequest struct {
	Graph     json.RawMessage `json:"graph,omitempty"`
	Gen       json.RawMessage `json:"gen,omitempty"`
	Dests     []int           `json:"dests,omitempty"`
	Bits      uint            `json:"bits,omitempty"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// BuildGraph materializes the request's graph under the same admission
// rules as /v1/solve.
func (r *AllPairsRequest) BuildGraph(maxN int) (*graph.Graph, error) {
	sr := SolveRequest{Graph: r.Graph, Gen: r.Gen}
	return sr.BuildGraph(maxN)
}

// AllPairsHeader is the first NDJSON line of a /v1/allpairs stream. The
// destination rows follow (each a DestResult — all n in ascending dest
// order, or the requested subset in request order), then an
// AllPairsTrailer. A stream that ends without a done:true trailer is
// incomplete; its last line is an ErrorResponse naming the failure.
type AllPairsHeader struct {
	N    int  `json:"n"`
	Bits uint `json:"bits"`
}

// AllPairsTrailer is the final NDJSON line of a complete stream.
type AllPairsTrailer struct {
	Done bool `json:"done"`
	// Rows is the number of destination rows streamed (on success: n, or
	// the size of the requested dests subset).
	Rows int `json:"rows"`
	// Cost is the summed machine cost over the whole sweep; Iterations
	// the summed DP round count.
	Cost       ppa.Metrics `json:"cost"`
	Iterations int         `json:"iterations"`
	// PoolHit reports whether the sweep ran on a recycled warm session.
	PoolHit bool `json:"pool_hit"`
}

// ErrorResponse is the body of every non-2xx reply, and the final line of
// an incomplete /v1/allpairs stream.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthStatus is the body of GET /healthz. The status code carries the
// load-balancer contract (200 while serving, 503 once draining); the
// body lets the router tier weight and evict backends on load, not just
// liveness. Fields are point-in-time gauges.
type HealthStatus struct {
	// Status is "ok" or "draining".
	Status string `json:"status"`
	// PoolIdle is the number of warm sessions parked in the pool.
	PoolIdle int `json:"pool_idle"`
	// QueueDepth is the number of batches waiting for a worker.
	QueueDepth int `json:"queue_depth"`
	// InflightBatches is the number of batches being solved right now.
	InflightBatches int64 `json:"inflight_batches"`
	// Sessions is the number of live dynamic-graph sessions.
	Sessions int `json:"sessions"`
	// Draining mirrors the 503 status code for JSON-only consumers.
	Draining bool `json:"draining"`
}
