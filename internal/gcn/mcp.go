package gcn

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// Options tunes SolveMCP.
type Options struct {
	// Bits is the machine word width h (0 = auto, graph.BitsNeeded).
	Bits uint
	// MaxIterations bounds the DP loop (0 = n+1).
	MaxIterations int
}

// Result is the GCN solution plus its cycle accounting.
type Result struct {
	graph.Result
	Metrics ppa.Metrics
	Bits    uint
}

// SolveMCP runs the paper's dynamic program on the Gated Connection
// Network. Dist, Next and Iterations agree exactly with core.Solve; the
// cost is Θ(p·h) wired-OR cycles like the PPA's, with smaller broadcast
// constants (GCN's bidirectional gated lines deliver a min in one cycle
// where the PPA's unidirectional rings need a reverse broadcast first).
func SolveMCP(g *graph.Graph, dest int, opt Options) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("gcn: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("gcn: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	if int64(n-1) > int64(inf) {
		return nil, fmt.Errorf("gcn: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}

	m := New(n, h)
	size := n * n
	w, err := loadWeights(g, h)
	if err != nil {
		return nil, err
	}

	rowIsD := make([]bool, size)
	colIsD := make([]bool, size)
	diag := make([]bool, size)
	notD := make([]bool, size)
	colIndex := make([]ppa.Word, size)
	allTrue := make([]bool, size)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p := i*n + j
			rowIsD[p] = i == dest
			colIsD[p] = j == dest
			diag[p] = i == j
			notD[p] = i != dest
			colIndex[p] = ppa.Word(j)
			allTrue[p] = true
		}
	}

	sow := make([]ppa.Word, size)
	ptn := make([]ppa.Word, size)
	minSOW := make([]ppa.Word, size) // zero-init keeps SOW[d][d] pinned at 0
	oldSOW := make([]ppa.Word, size)
	changed := make([]bool, size)

	assignWhere := func(dst, src []ppa.Word, mask []bool) {
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range dst {
			if mask[p] {
				dst[p] = src[p]
			}
		}
	}

	// Initialization: SOW[d][j] = w_jd via two gated broadcasts
	// (column d across the rows, then the diagonal down the columns).
	acrossRows := append([]ppa.Word(nil), w...)
	m.Broadcast(Rows, colIsD, w, acrossRows)
	ontoRowD := append([]ppa.Word(nil), acrossRows...)
	m.Broadcast(Cols, diag, acrossRows, ontoRowD)
	assignWhere(sow, ontoRowD, rowIsD)
	m.CountInstr()
	m.CountPE(int64(size))
	for p := range ptn {
		if rowIsD[p] {
			ptn[p] = ppa.Word(dest)
		}
	}
	sow[dest*n+dest] = 0

	scratch := make([]ppa.Word, size)
	iterations := 0
	for {
		iterations++
		if iterations > maxIter {
			return nil, fmt.Errorf("gcn: DP did not converge within %d rounds", maxIter)
		}

		// Column broadcast of row d, then local add of W.
		copy(scratch, sow)
		m.Broadcast(Cols, rowIsD, sow, scratch)
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range scratch {
			scratch[p] = ppa.SatAdd(scratch[p], w[p], h)
		}
		assignWhere(sow, scratch, notD)

		// Whole-row min, then arg-min over the achieving PEs.
		rowMin := m.Min(Rows, sow, allTrue)
		assignWhere(minSOW, rowMin, notD)
		m.CountInstr()
		m.CountPE(int64(size))
		sel := make([]bool, size)
		for p := range sel {
			sel[p] = rowMin[p] == sow[p]
		}
		argMin := m.Min(Rows, colIndex, sel)
		assignWhere(ptn, argMin, notD)

		// Fold the per-row results back into row d via the diagonal.
		newRow := append([]ppa.Word(nil), minSOW...)
		m.Broadcast(Cols, diag, minSOW, newRow)
		newPTN := append([]ppa.Word(nil), ptn...)
		m.Broadcast(Cols, diag, ptn, newPTN)
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range changed {
			changed[p] = false
			if rowIsD[p] {
				oldSOW[p] = sow[p]
				sow[p] = newRow[p]
				if sow[p] != oldSOW[p] {
					changed[p] = true
					ptn[p] = newPTN[p]
				}
			}
		}
		if !m.GlobalOr(changed) {
			break
		}
	}

	res := &Result{
		Result: graph.Result{
			Dest:       dest,
			Dist:       make([]int64, n),
			Next:       make([]int, n),
			Iterations: iterations,
		},
		Metrics: m.Metrics(),
		Bits:    h,
	}
	for i := 0; i < n; i++ {
		s := sow[dest*n+i]
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case s == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(s)
			res.Next[i] = int(ptn[dest*n+i])
		}
	}
	return res, nil
}

// loadWeights mirrors core's conversion (NoEdge -> MAXINT, zero diagonal,
// saturation guard).
func loadWeights(g *graph.Graph, h uint) ([]ppa.Word, error) {
	n := g.N
	inf := ppa.Infinity(h)
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			case n > 1 && wt > (int64(inf)-1)/int64(n-1):
				return nil, fmt.Errorf(
					"gcn: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT",
					h, n-1, wt)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	return w, nil
}

// PredictedCost is the analytical comm-cycle model of one SolveMCP run:
// initialization costs 2 bus cycles; each round costs 2h wired-OR cycles
// (two bit-serial minima), 5 bus cycles (column broadcast, two min
// deliveries, two diagonal broadcasts) and one global-OR.
func PredictedCost(h uint, iters int) ppa.Metrics {
	return ppa.Metrics{
		BusCycles:     int64(iters)*5 + 2,
		WiredOrCycles: int64(iters) * 2 * int64(h),
		GlobalOrOps:   int64(iters),
	}
}
