package gcn

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

func TestBroadcastBidirectionalNearest(t *testing.T) {
	m := New(5, 8)
	src := make([]ppa.Word, 25)
	open := make([]bool, 25)
	dst := make([]ppa.Word, 25)
	// Row 0: gates open at cols 1 and 4 with values 11 and 44.
	open[1], src[1] = true, 11
	open[4], src[4] = true, 44
	m.Broadcast(Rows, open, src, dst)
	// Nearest gate: col0->1(d1), col1->itself, col2->1(d1 vs d2),
	// col3->4(d1 vs d2), col4->itself. Ties go to the lower position.
	want := []ppa.Word{11, 11, 11, 44, 44}
	for c := 0; c < 5; c++ {
		if dst[c] != want[c] {
			t.Errorf("col %d = %d, want %d", c, dst[c], want[c])
		}
	}
	// Other rows float: dst untouched (zero).
	for p := 5; p < 25; p++ {
		if dst[p] != 0 {
			t.Errorf("floating lane %d = %d", p, dst[p])
		}
	}
	if m.Metrics().BusCycles != 1 {
		t.Errorf("BusCycles = %d, want 1", m.Metrics().BusCycles)
	}
}

func TestBroadcastTieGoesLow(t *testing.T) {
	m := New(3, 8)
	src := []ppa.Word{7, 0, 9, 0, 0, 0, 0, 0, 0}
	open := []bool{true, false, true, false, false, false, false, false, false}
	dst := make([]ppa.Word, 9)
	m.Broadcast(Rows, open, src, dst)
	// Col 1 is equidistant from gates 0 and 2: the lower position wins.
	if dst[1] != 7 {
		t.Errorf("tie resolved to %d, want 7", dst[1])
	}
}

func TestBroadcastColumnsAndAliasing(t *testing.T) {
	m := New(3, 8)
	v := make([]ppa.Word, 9)
	open := make([]bool, 9)
	// Column 2: gate open at row 1 (flat 5), value 55.
	open[5], v[5] = true, 55
	m.Broadcast(Cols, open, v, v)
	if v[2] != 55 || v[5] != 55 || v[8] != 55 {
		t.Errorf("column broadcast: %v", v)
	}
	if v[0] != 0 || v[4] != 0 {
		t.Error("floating columns modified")
	}
}

func TestWiredOrSegments(t *testing.T) {
	m := New(6, 8)
	open := make([]bool, 36)
	drive := make([]bool, 36)
	dst := make([]bool, 36)
	// Row 0: gates at cols 2 and 4 -> segments {0,1}, {2,3}, {4,5}.
	open[2], open[4] = true, true
	drive[3] = true // only segment {2,3} drives
	m.WiredOr(Rows, open, drive, dst)
	want := []bool{false, false, true, true, false, false}
	for c := 0; c < 6; c++ {
		if dst[c] != want[c] {
			t.Errorf("col %d = %v, want %v", c, dst[c], want[c])
		}
	}
}

func TestWiredOrHeadlessWholeLine(t *testing.T) {
	m := New(4, 8)
	open := make([]bool, 16) // no gates: each row is one segment
	drive := make([]bool, 16)
	dst := make([]bool, 16)
	drive[6] = true // row 1
	m.WiredOr(Rows, open, drive, dst)
	for p := 0; p < 16; p++ {
		if dst[p] != (p/4 == 1) {
			t.Errorf("lane %d = %v", p, dst[p])
		}
	}
}

func TestMinWholeLine(t *testing.T) {
	m := New(4, 8)
	src := []ppa.Word{
		9, 3, 7, 5,
		255, 255, 255, 255,
		4, 4, 9, 6,
		1, 0, 2, 3,
	}
	all := make([]bool, 16)
	for i := range all {
		all[i] = true
	}
	got := m.Min(Rows, src, all)
	want := []ppa.Word{3, 255, 4, 0}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got[r*4+c] != want[r] {
				t.Errorf("min[%d,%d] = %d, want %d", r, c, got[r*4+c], want[r])
			}
		}
	}
	// h wired-OR cycles + 1 delivery broadcast.
	if mt := m.Metrics(); mt.WiredOrCycles != 8 || mt.BusCycles != 1 {
		t.Errorf("metrics = %v, want 8 wired-OR + 1 bus", mt)
	}
}

func TestMinSelectedSubset(t *testing.T) {
	m := New(3, 8)
	src := []ppa.Word{
		5, 1, 9,
		7, 2, 3,
		8, 8, 8,
	}
	sel := []bool{
		true, false, true, // min over {5, 9} = 5
		false, false, true, // min over {3} = 3
		false, false, false, // empty: floats, src returned
	}
	got := m.Min(Rows, src, sel)
	if got[0] != 5 || got[1] != 5 || got[2] != 5 {
		t.Errorf("row 0: %v", got[:3])
	}
	if got[3] != 3 || got[5] != 3 {
		t.Errorf("row 1: %v", got[3:6])
	}
	if got[6] != 8 || got[7] != 8 || got[8] != 8 {
		t.Errorf("row 2 (empty sel): %v", got[6:9])
	}
}

func TestMinRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		h := uint(4 + rng.Intn(8))
		m := New(n, h)
		src := make([]ppa.Word, n*n)
		all := make([]bool, n*n)
		for i := range src {
			src[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
			all[i] = true
		}
		got := m.Min(Rows, src, all)
		for r := 0; r < n; r++ {
			want := src[r*n]
			for c := 1; c < n; c++ {
				if src[r*n+c] < want {
					want = src[r*n+c]
				}
			}
			for c := 0; c < n; c++ {
				if got[r*n+c] != want {
					t.Fatalf("trial %d row %d: got %d, want %d", trial, r, got[r*n+c], want)
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 8) },
		func() { New(3, 0) },
		func() { New(3, 63) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad New args did not panic")
				}
			}()
			f()
		}()
	}
	m := New(4, 10)
	if m.N() != 4 || m.Bits() != 10 || m.Inf() != 1023 {
		t.Error("accessors wrong")
	}
	if Rows.String() != "Rows" || Cols.String() != "Cols" {
		t.Error("Axis.String wrong")
	}
}

func TestSolveMCPMatchesPPAExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(13)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(15)), rng.Int63())
		dest := rng.Intn(n)
		want, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMCP(g, dest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Dist, got.Dist) ||
			!reflect.DeepEqual(want.Next, got.Next) ||
			want.Iterations != got.Iterations {
			t.Fatalf("trial %d (n=%d dest=%d): GCN diverged\nppa: %v %v (%d)\ngcn: %v %v (%d)",
				trial, n, dest, want.Dist, want.Next, want.Iterations,
				got.Dist, got.Next, got.Iterations)
		}
		if err := graph.CheckResult(g, &got.Result); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveMCPMetricsMatchModel(t *testing.T) {
	for _, n := range []int{2, 5, 9} {
		g := graph.GenRandomConnected(n, 0.4, 7, int64(n))
		r, err := SolveMCP(g, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := PredictedCost(r.Bits, r.Iterations)
		got := r.Metrics
		if got.BusCycles != want.BusCycles || got.WiredOrCycles != want.WiredOrCycles ||
			got.GlobalOrOps != want.GlobalOrOps {
			t.Errorf("n=%d: metrics %v, model %v", n, got, want)
		}
		if got.ShiftSteps != 0 || got.RouterCycles != 0 {
			t.Errorf("n=%d: GCN used foreign fabric: %v", n, got)
		}
	}
}

func TestSolveMCPSingleVertexAndErrors(t *testing.T) {
	r, err := SolveMCP(graph.New(1), 0, Options{})
	if err != nil || r.Dist[0] != 0 {
		t.Errorf("trivial solve: %v %v", r, err)
	}
	g := graph.GenChain(4, 1)
	if _, err := SolveMCP(g, 7, Options{}); err == nil {
		t.Error("bad dest accepted")
	}
	if _, err := SolveMCP(g, 0, Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := SolveMCP(graph.GenChain(10, 1), 0, Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted 10 vertices")
	}
	if _, err := SolveMCP(graph.GenChain(5, 60), 4, Options{Bits: 7}); err == nil {
		t.Error("saturating configuration accepted")
	}
	if _, err := SolveMCP(g, 3, Options{MaxIterations: 1}); err == nil {
		t.Error("MaxIterations guard did not trip")
	}
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := SolveMCP(bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}
