// Package gcn models the paper's second comparator: the Gated Connection
// Network of Shu and Nash, an n x n array whose row and column lines carry
// gated buses designed specifically for dynamic programming.
//
// The model differs from the PPA in two architecturally relevant ways:
//
//   - lines, not rings: GCN buses do not wrap around, but a gate-opened
//     node drives its line in *both* directions, so a single source still
//     reaches the whole line in one cycle (the PPA needs the torus wrap
//     for that);
//   - headless wired-OR: an un-gated line is a single segment, so a
//     whole-line OR needs no gate configuration at all.
//
// Both machines share the unit-cost bus transaction assumption, which is
// why the paper's complexity-parity claim holds: MCP costs Θ(p·h) cycles
// here too, with slightly smaller constants (experiment E3).
package gcn

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Axis selects which lines a bus operation uses.
type Axis uint8

const (
	// Rows runs one bus per row.
	Rows Axis = iota
	// Cols runs one bus per column.
	Cols
)

func (a Axis) String() string {
	if a == Rows {
		return "Rows"
	}
	return "Cols"
}

// Machine is an n x n gated connection network.
type Machine struct {
	n       int
	h       uint
	metrics ppa.Metrics
}

// New returns an n x n machine with h-bit words.
func New(n int, h uint) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("gcn: machine side %d < 1", n))
	}
	if h == 0 || h > ppa.MaxBits {
		panic(fmt.Sprintf("gcn: word width %d out of range [1,%d]", h, ppa.MaxBits))
	}
	return &Machine{n: n, h: h}
}

// N returns the array side.
func (m *Machine) N() int { return m.n }

// Bits returns the word width h.
func (m *Machine) Bits() uint { return m.h }

// Inf returns the machine MAXINT.
func (m *Machine) Inf() ppa.Word { return ppa.Infinity(m.h) }

// Metrics returns the accumulated cost counters.
func (m *Machine) Metrics() ppa.Metrics { return m.metrics }

// ResetMetrics zeroes the counters.
func (m *Machine) ResetMetrics() { m.metrics = ppa.Metrics{} }

// CountPE charges ops local ALU operations.
func (m *Machine) CountPE(ops int64) { m.metrics.PEOps += ops }

// CountInstr charges one SIMD instruction.
func (m *Machine) CountInstr() { m.metrics.Instructions++ }

func (m *Machine) checkLen(name string, got int) {
	if got != m.n*m.n {
		panic(fmt.Sprintf("gcn: %s has length %d, want %d", name, got, m.n*m.n))
	}
}

// line returns the flat index of position k on line i of the axis.
func (m *Machine) line(a Axis, i, k int) int {
	if a == Rows {
		return i*m.n + k
	}
	return k*m.n + i
}

// Broadcast performs one gated-bus transaction: on each line, every PE
// receives the src value of the *nearest* gate-opened PE (gates drive both
// directions; distance ties resolve toward the lower line position, and a
// PE whose own gate is open hears itself). PEs on a line with no open gate
// keep their dst value (floating bus). dst may alias src.
// Cost: one bus cycle.
func (m *Machine) Broadcast(a Axis, open []bool, src, dst []ppa.Word) {
	m.checkLen("open", len(open))
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	m.metrics.BusCycles++
	n := m.n
	nearest := make([]int, n) // reused per line: index of chosen driver
	for i := 0; i < n; i++ {
		// For each position, find the nearest open gate on the line.
		last := -1 // nearest open at or before k
		for k := 0; k < n; k++ {
			if open[m.line(a, i, k)] {
				last = k
			}
			nearest[k] = last
		}
		next := -1 // nearest open at or after k
		for k := n - 1; k >= 0; k-- {
			if open[m.line(a, i, k)] {
				next = k
			}
			prev := nearest[k]
			switch {
			case prev == -1:
				nearest[k] = next
			case next == -1:
				// keep prev
			case next-k < k-prev:
				nearest[k] = next
			default:
				// ties (and closer prev) resolve toward the lower position
			}
		}
		// Snapshot drivers before writing (dst may alias src).
		vals := make([]ppa.Word, n)
		for k := 0; k < n; k++ {
			if nearest[k] >= 0 {
				vals[k] = src[m.line(a, i, nearest[k])]
			}
		}
		for k := 0; k < n; k++ {
			if nearest[k] >= 0 {
				dst[m.line(a, i, k)] = vals[k]
			}
		}
	}
}

// WiredOr performs one 1-bit wired-OR transaction: each line is cut into
// segments by open gates (an open gate starts a new segment; the prefix
// before the first gate is its own headless segment; a line with no open
// gates is one whole segment). Every PE drives drive onto its segment and
// reads back the segment OR. dst may alias drive. Cost: one wired-OR
// cycle.
func (m *Machine) WiredOr(a Axis, open, drive, dst []bool) {
	m.checkLen("open", len(open))
	m.checkLen("drive", len(drive))
	m.checkLen("dst", len(dst))
	m.metrics.WiredOrCycles++
	n := m.n
	for i := 0; i < n; i++ {
		start := 0
		for start < n {
			end := start + 1
			for end < n && !open[m.line(a, i, end)] {
				end++
			}
			or := false
			for k := start; k < end; k++ {
				or = or || drive[m.line(a, i, k)]
			}
			for k := start; k < end; k++ {
				dst[m.line(a, i, k)] = or
			}
			start = end
		}
	}
}

// GlobalOr evaluates the controller's global-OR line.
func (m *Machine) GlobalOr(pred []bool) bool {
	m.checkLen("pred", len(pred))
	m.metrics.GlobalOrOps++
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}

// Min computes, on every line of the axis treated as a single whole-line
// segment (no gates), the minimum of src over the PEs where sel is true,
// and delivers it to every PE of the line. Lines whose selected subset is
// empty float and return the unchanged src values. It uses the same
// bit-serial scan as the PPA's min()/selected_min(): h wired-OR
// cycles to isolate the minima, then one gated broadcast from the
// surviving PEs (all of which hold the minimum, so the bidirectional
// nearest-driver rule is exact). Cost: h wired-OR cycles + 1 bus cycle.
func (m *Machine) Min(a Axis, src []ppa.Word, sel []bool) []ppa.Word {
	m.checkLen("src", len(src))
	m.checkLen("sel", len(sel))
	size := m.n * m.n
	enable := append([]bool(nil), sel...)
	noGates := make([]bool, size)
	drive := make([]bool, size)
	seenZero := make([]bool, size)
	for j := int(m.h) - 1; j >= 0; j-- {
		m.CountInstr()
		m.CountPE(int64(size))
		for p := 0; p < size; p++ {
			drive[p] = enable[p] && !ppa.Bit(src[p], uint(j))
		}
		m.WiredOr(a, noGates, drive, seenZero)
		m.CountInstr()
		m.CountPE(int64(size))
		for p := 0; p < size; p++ {
			if seenZero[p] && ppa.Bit(src[p], uint(j)) {
				enable[p] = false
			}
		}
	}
	out := append([]ppa.Word(nil), src...)
	m.Broadcast(a, enable, src, out)
	return out
}
