package hypercube

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

func TestExchange(t *testing.T) {
	m := New(2)
	src := []ppa.Word{10, 11, 12, 13}
	dst := make([]ppa.Word, 4)
	m.Exchange(0, src, dst)
	if want := []ppa.Word{11, 10, 13, 12}; !reflect.DeepEqual(dst, want) {
		t.Errorf("dim 0: %v, want %v", dst, want)
	}
	if want := []ppa.Word{10, 11, 12, 13}; !reflect.DeepEqual(src, want) {
		t.Errorf("src mutated: %v", src)
	}
	m.Exchange(1, src, dst)
	if want := []ppa.Word{12, 13, 10, 11}; !reflect.DeepEqual(dst, want) {
		t.Errorf("dim 1: %v, want %v", dst, want)
	}
	// In-place exchange.
	m.Exchange(0, src, src)
	if want := []ppa.Word{11, 10, 13, 12}; !reflect.DeepEqual(src, want) {
		t.Errorf("aliased: %v, want %v", src, want)
	}
	if m.Metrics().RouterCycles != 3 {
		t.Errorf("RouterCycles = %d, want 3", m.Metrics().RouterCycles)
	}
}

func TestExchangeInvolutive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(4)
	v := make([]ppa.Word, m.Size())
	for i := range v {
		v[i] = ppa.Word(rng.Intn(1000))
	}
	orig := append([]ppa.Word(nil), v...)
	for d := uint(0); d < 4; d++ {
		m.Exchange(d, v, v)
		m.Exchange(d, v, v)
	}
	if !reflect.DeepEqual(v, orig) {
		t.Error("double exchange is not the identity")
	}
}

func TestExchangeBadDimPanics(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad dimension did not panic")
		}
	}()
	m.Exchange(2, make([]ppa.Word, 4), make([]ppa.Word, 4))
}

func TestReduceMinAllReduce(t *testing.T) {
	m := New(3)
	v := []ppa.Word{7, 3, 9, 5, 8, 2, 6, 4}
	m.ReduceMin([]uint{0, 1, 2}, v)
	for i, x := range v {
		if x != 2 {
			t.Errorf("v[%d] = %d, want 2", i, x)
		}
	}
	if m.Metrics().RouterCycles != 3 {
		t.Errorf("RouterCycles = %d, want 3", m.Metrics().RouterCycles)
	}
}

func TestReduceMinSubcubes(t *testing.T) {
	m := New(3)
	v := []ppa.Word{7, 3, 9, 5, 8, 2, 6, 4}
	// Reduce only over dim 0: pairs (0,1), (2,3), (4,5), (6,7).
	m.ReduceMin([]uint{0}, v)
	if want := []ppa.Word{3, 3, 5, 5, 2, 2, 4, 4}; !reflect.DeepEqual(v, want) {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestReduceMinPairTieBreak(t *testing.T) {
	m := New(2)
	key := []ppa.Word{5, 5, 9, 5}
	pay := []ppa.Word{3, 1, 0, 2}
	m.ReduceMinPair([]uint{0, 1}, key, pay)
	for i := range key {
		if key[i] != 5 || pay[i] != 1 {
			t.Errorf("lane %d: (%d,%d), want (5,1)", i, key[i], pay[i])
		}
	}
}

func TestBroadcastFrom(t *testing.T) {
	m := New(2)
	v := []ppa.Word{10, 11, 12, 13}
	m.BroadcastFrom([]uint{0, 1}, 2, v, 1<<16-1)
	for i, x := range v {
		if x != 12 {
			t.Errorf("v[%d] = %d, want 12", i, x)
		}
	}
}

func TestBroadcastMaskedPerSubcube(t *testing.T) {
	m := New(2)
	// Subcubes over dim 1: {0,2} and {1,3}. Sources: 2 and 1.
	v := []ppa.Word{10, 11, 12, 13}
	mask := []bool{false, true, true, false}
	m.BroadcastMasked([]uint{1}, mask, v, 1<<16-1)
	if want := []ppa.Word{12, 11, 12, 11}; !reflect.DeepEqual(v, want) {
		t.Errorf("v = %v, want %v", v, want)
	}
}

func TestGlobalOr(t *testing.T) {
	m := New(1)
	if m.GlobalOr([]bool{false, false}) || !m.GlobalOr([]bool{false, true}) {
		t.Error("GlobalOr wrong")
	}
	if m.Metrics().GlobalOrOps != 2 {
		t.Error("GlobalOrOps not counted")
	}
	m.ResetMetrics()
	if m.Metrics() != (ppa.Metrics{}) {
		t.Error("ResetMetrics failed")
	}
}

func TestPadToPow2(t *testing.T) {
	cases := []struct {
		n, np int
		log   uint
	}{{1, 1, 0}, {2, 2, 1}, {3, 4, 2}, {4, 4, 2}, {5, 8, 3}, {9, 16, 4}}
	for _, c := range cases {
		np, lg := padToPow2(c.n)
		if np != c.np || lg != c.log {
			t.Errorf("padToPow2(%d) = %d,%d, want %d,%d", c.n, np, lg, c.np, c.log)
		}
	}
}

func TestSolveMCPChain(t *testing.T) {
	g := graph.GenChain(6, 2)
	r, err := SolveMCP(g, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{10, 8, 6, 4, 2, 0}; !reflect.DeepEqual(r.Dist, want) {
		t.Errorf("Dist = %v, want %v", r.Dist, want)
	}
	if r.PaddedN != 8 {
		t.Errorf("PaddedN = %d, want 8", r.PaddedN)
	}
	if err := graph.CheckResult(g, &r.Result); err != nil {
		t.Error(err)
	}
}

// TestSolveMCPMatchesPPAExactly: the hypercube runs the same DP with the
// same tie-breaking, so Dist, Next and Iterations agree with core.Solve.
func TestSolveMCPMatchesPPAExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(13)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(15)), rng.Int63())
		dest := rng.Intn(n)
		want, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveMCP(g, dest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Dist, got.Dist) ||
			!reflect.DeepEqual(want.Next, got.Next) ||
			want.Iterations != got.Iterations {
			t.Fatalf("trial %d (n=%d dest=%d): hypercube diverged\nppa: %v %v (%d)\ncube: %v %v (%d)",
				trial, n, dest, want.Dist, want.Next, want.Iterations,
				got.Dist, got.Next, got.Iterations)
		}
	}
}

func TestSolveMCPRouterCyclesMatchModel(t *testing.T) {
	for _, n := range []int{2, 5, 8, 13} {
		g := graph.GenRandomConnected(n, 0.4, 7, int64(n))
		r, err := SolveMCP(g, n-1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		np, logNp := padToPow2(n)
		if r.PaddedN != np {
			t.Errorf("n=%d: PaddedN = %d, want %d", n, r.PaddedN, np)
		}
		want := PredictedRouterCycles(logNp, r.Iterations)
		if r.Metrics.RouterCycles != want {
			t.Errorf("n=%d: RouterCycles = %d, model %d (iters=%d)",
				n, r.Metrics.RouterCycles, want, r.Iterations)
		}
		if r.Metrics.BusCycles != 0 || r.Metrics.ShiftSteps != 0 || r.Metrics.WiredOrCycles != 0 {
			t.Errorf("n=%d: hypercube used non-router fabric: %v", n, r.Metrics)
		}
	}
}

// TestBitSerialRouterScalesExactlyByH: same answers, router cycles
// multiplied by the word width — the CM-1 fidelity knob.
func TestBitSerialRouterScalesExactlyByH(t *testing.T) {
	g := graph.GenRandomConnected(9, 0.3, 9, 8)
	word, err := SolveMCP(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bit, err := SolveMCP(g, 4, Options{Bits: word.Bits, BitSerialRouter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(word.Dist, bit.Dist) || !reflect.DeepEqual(word.Next, bit.Next) {
		t.Fatal("bit-serial router changed the answers")
	}
	if bit.Metrics.RouterCycles != int64(word.Bits)*word.Metrics.RouterCycles {
		t.Errorf("bit-serial cycles %d, want %d x %d",
			bit.Metrics.RouterCycles, word.Bits, word.Metrics.RouterCycles)
	}
}

func TestWithWordCostFloor(t *testing.T) {
	m := New(1, WithWordCost(0)) // clamps to 1
	m.Exchange(0, make([]ppa.Word, 2), make([]ppa.Word, 2))
	if m.Metrics().RouterCycles != 1 {
		t.Errorf("RouterCycles = %d, want clamped 1", m.Metrics().RouterCycles)
	}
}

func TestSolveMCPSingleVertex(t *testing.T) {
	r, err := SolveMCP(graph.New(1), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 0 || r.Next[0] != -1 || r.PaddedN != 1 {
		t.Errorf("trivial: %+v", r)
	}
}

func TestSolveMCPUnreachableAndPadding(t *testing.T) {
	// n=3 pads to 4; the padded vertex must not leak into results.
	g := graph.New(3)
	g.SetEdge(0, 2, 4)
	r, err := SolveMCP(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 4 || r.Dist[1] != graph.NoEdge || len(r.Dist) != 3 {
		t.Errorf("padding leak: %v", r.Dist)
	}
}

func TestSolveMCPErrors(t *testing.T) {
	g := graph.GenChain(4, 1)
	if _, err := SolveMCP(g, 4, Options{}); err == nil {
		t.Error("bad dest accepted")
	}
	if _, err := SolveMCP(g, 0, Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := SolveMCP(graph.GenChain(10, 1), 0, Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted 10 vertices (padded to 16)")
	}
	if _, err := SolveMCP(graph.GenChain(5, 60), 4, Options{Bits: 7}); err == nil {
		t.Error("saturating configuration accepted")
	}
	if _, err := SolveMCP(g, 3, Options{MaxIterations: 1}); err == nil {
		t.Error("MaxIterations guard did not trip")
	}
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := SolveMCP(bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestNewPanicsOnHugeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(31) did not panic")
		}
	}()
	New(31)
}
