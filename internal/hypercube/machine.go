// Package hypercube models the comparator the paper names first: the
// Connection Machine's hypercube interconnection network (Hillis [4]),
// as a SIMD machine of 2^q processors in which one dimension-exchange —
// every PE swapping a word with its neighbour across one hypercube
// dimension — costs one router cycle.
//
// Subcube reductions and broadcasts built from dimension exchanges cost
// O(log n) router cycles, which is the complexity class the paper claims
// parity with: MCP runs in Θ(p · log n) router cycles here versus
// Θ(p · h) bus cycles on the PPA. EXPERIMENTS.md discusses the
// unlike-units caveat (word-wide router cycle vs bit-wide wired-OR cycle),
// which applies equally to the paper's own parity claim.
package hypercube

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Machine is a SIMD hypercube of 2^q processing elements.
type Machine struct {
	q        uint
	size     int
	wordCost int64
	metrics  ppa.Metrics
}

// MachineOption configures a Machine.
type MachineOption func(*Machine)

// WithWordCost sets how many router cycles one dimension exchange of a
// word costs. The default (1) models a word-wide router; pass the word
// width h to model the CM-1's bit-serial links, where moving an h-bit
// word costs h cycles — the conservative reading of the paper's parity
// claim (see EXPERIMENTS.md, E3 caveats).
func WithWordCost(c int64) MachineOption {
	return func(m *Machine) {
		if c < 1 {
			c = 1
		}
		m.wordCost = c
	}
}

// New returns a hypercube with 2^q PEs. q may be 0 (a single PE).
func New(q uint, opts ...MachineOption) *Machine {
	if q > 30 {
		panic(fmt.Sprintf("hypercube: dimension %d unreasonably large", q))
	}
	m := &Machine{q: q, size: 1 << q, wordCost: 1}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Dims returns q, the number of hypercube dimensions.
func (m *Machine) Dims() uint { return m.q }

// Size returns the number of PEs, 2^q.
func (m *Machine) Size() int { return m.size }

// Metrics returns the accumulated cost counters.
func (m *Machine) Metrics() ppa.Metrics { return m.metrics }

// ResetMetrics zeroes the counters.
func (m *Machine) ResetMetrics() { m.metrics = ppa.Metrics{} }

// CountPE charges ops local ALU operations.
func (m *Machine) CountPE(ops int64) { m.metrics.PEOps += ops }

// CountInstr charges one SIMD instruction.
func (m *Machine) CountInstr() { m.metrics.Instructions++ }

func (m *Machine) checkLen(name string, got int) {
	if got != m.size {
		panic(fmt.Sprintf("hypercube: %s has length %d, want %d", name, got, m.size))
	}
}

func (m *Machine) checkDim(dim uint) {
	if dim >= m.q {
		panic(fmt.Sprintf("hypercube: dimension %d out of range [0,%d)", dim, m.q))
	}
}

// Exchange performs one dimension exchange: dst[i] = src[i ^ (1<<dim)].
// dst may alias src. Cost: one router cycle.
func (m *Machine) Exchange(dim uint, src, dst []ppa.Word) {
	m.checkDim(dim)
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	m.metrics.RouterCycles += m.wordCost
	bit := 1 << dim
	for i := 0; i < m.size; i += 2 * bit {
		for j := i; j < i+bit; j++ {
			src[j], src[j+bit] = src[j+bit], src[j]
		}
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
		// Restore src (Exchange is logically pure on src when not aliased).
		for i := 0; i < m.size; i += 2 * bit {
			for j := i; j < i+bit; j++ {
				src[j], src[j+bit] = src[j+bit], src[j]
			}
		}
	}
}

// GlobalOr evaluates the controller's global-OR line over pred.
func (m *Machine) GlobalOr(pred []bool) bool {
	m.checkLen("pred", len(pred))
	m.metrics.GlobalOrOps++
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}

// ReduceMin performs an all-reduce minimum over the subcubes spanned by
// dims: after the call every PE holds the minimum of v over all PEs that
// differ from it only in the given dimensions. Cost: len(dims) router
// cycles (one exchange each) plus local compares.
func (m *Machine) ReduceMin(dims []uint, v []ppa.Word) {
	m.checkLen("v", len(v))
	partner := make([]ppa.Word, m.size)
	for _, d := range dims {
		m.Exchange(d, v, partner)
		m.CountInstr()
		m.CountPE(int64(m.size))
		for i := range v {
			if partner[i] < v[i] {
				v[i] = partner[i]
			}
		}
	}
}

// ReduceMinPair performs the same all-reduce minimum but carries a payload
// word alongside the key, breaking ties toward the smaller payload — the
// arg-min used to extract PTN pointers. Cost: 2 router cycles per
// dimension (key and payload move separately, as on a 1-word-wide router).
func (m *Machine) ReduceMinPair(dims []uint, key, payload []ppa.Word) {
	m.checkLen("key", len(key))
	m.checkLen("payload", len(payload))
	pkey := make([]ppa.Word, m.size)
	ppay := make([]ppa.Word, m.size)
	for _, d := range dims {
		m.Exchange(d, key, pkey)
		m.Exchange(d, payload, ppay)
		m.CountInstr()
		m.CountPE(int64(m.size))
		for i := range key {
			if pkey[i] < key[i] || (pkey[i] == key[i] && ppay[i] < payload[i]) {
				key[i], payload[i] = pkey[i], ppay[i]
			}
		}
	}
}

// BroadcastFrom delivers, within each subcube spanned by dims, the value
// held by the subcube member whose coordinates in those dimensions equal
// the corresponding bits of source. Cost: len(dims) router cycles.
func (m *Machine) BroadcastFrom(dims []uint, source int, v []ppa.Word, top ppa.Word) {
	var mask int
	for _, d := range dims {
		m.checkDim(d)
		mask |= 1 << d
	}
	srcMask := make([]bool, m.size)
	for i := range srcMask {
		srcMask[i] = i&mask == source&mask
	}
	m.BroadcastMasked(dims, srcMask, v, top)
}

// BroadcastMasked delivers, within each subcube spanned by dims, the value
// held by that subcube's (unique) member for which sourceMask is true.
// Implemented as a masked min-reduce: non-sources contribute the absorbing
// element top, so the call is exact whenever every subcube has at most one
// source (subcubes with none are filled with top). Cost: len(dims) router
// cycles plus one local masking instruction.
func (m *Machine) BroadcastMasked(dims []uint, sourceMask []bool, v []ppa.Word, top ppa.Word) {
	m.checkLen("sourceMask", len(sourceMask))
	m.checkLen("v", len(v))
	m.CountInstr()
	m.CountPE(int64(m.size))
	for i := range v {
		if !sourceMask[i] {
			v[i] = top
		}
	}
	m.ReduceMin(dims, v)
}
