package hypercube

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// Options tunes SolveMCP.
type Options struct {
	// Bits is the word width used for MAXINT/saturation (0 = auto).
	Bits uint
	// MaxIterations bounds the DP loop (0 = n+1).
	MaxIterations int
	// BitSerialRouter charges h router cycles per word exchange (the
	// CM-1's bit-serial links) instead of 1 — the conservative unit for
	// the E3 comparison against the PPA's bit-wide wired-OR cycles.
	BitSerialRouter bool
}

// Result is the hypercube solution plus its cycle accounting (dominated
// by RouterCycles).
type Result struct {
	graph.Result
	Metrics ppa.Metrics
	Bits    uint
	// PaddedN is the power-of-two the vertex count was padded to; the
	// machine has PaddedN^2 processors.
	PaddedN int
}

// SolveMCP runs the same dynamic program as the PPA on a SIMD hypercube,
// following Hillis's Connection Machine formulation: the n x n matrix is
// embedded in a 2^(2q')-processor cube (n padded to 2^q'), rows and
// columns are subcubes, and each DP round costs Θ(log n) router cycles
// (one column broadcast, one row arg-min reduction, two diagonal-to-column
// broadcasts). Dist, Next and Iterations agree exactly with core.Solve.
func SolveMCP(g *graph.Graph, dest int, opt Options) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("hypercube: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("hypercube: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	np, logNp := padToPow2(n)
	if int64(np-1) > int64(inf) {
		return nil, fmt.Errorf("hypercube: %d-bit words cannot hold vertex indices up to %d", h, np-1)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}

	var mopts []MachineOption
	if opt.BitSerialRouter {
		mopts = append(mopts, WithWordCost(int64(h)))
	}
	m := New(2*logNp, mopts...)
	size := m.Size() // np * np
	rowDims := make([]uint, 0, logNp)
	colDims := make([]uint, 0, logNp)
	for d := uint(0); d < logNp; d++ {
		rowDims = append(rowDims, d)       // varying the column index j
		colDims = append(colDims, d+logNp) // varying the row index i
	}

	w, err := loadWeights(g, np, h)
	if err != nil {
		return nil, err
	}

	rowIsD := make([]bool, size)
	diagMask := make([]bool, size)
	notD := make([]bool, size)
	colIndex := make([]ppa.Word, size)
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			p := i*np + j
			rowIsD[p] = i == dest
			diagMask[p] = i == j
			notD[p] = i != dest
			colIndex[p] = ppa.Word(j)
		}
	}

	sow := make([]ppa.Word, size)
	ptn := make([]ppa.Word, size)
	minSOW := make([]ppa.Word, size) // zero-init keeps SOW[d][d] pinned at 0
	oldSOW := make([]ppa.Word, size)
	changed := make([]bool, size)

	assignWhere := func(dst, src []ppa.Word, mask []bool) {
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range dst {
			if mask[p] {
				dst[p] = src[p]
			}
		}
	}

	// Initialization: SOW[d][j] = w_jd. Move column d across rows, then
	// fold through the diagonal onto row d — the hypercube version of the
	// corrected statement-5 init.
	acrossRows := append([]ppa.Word(nil), w...)
	m.BroadcastFrom(rowDims, dest, acrossRows, inf) // (i, c) <- w_id
	ontoRowD := acrossRows
	m.BroadcastMasked(colDims, diagMask, ontoRowD, inf) // (r, j) <- w_jd
	assignWhere(sow, ontoRowD, rowIsD)
	m.CountInstr()
	m.CountPE(int64(size))
	for p := range ptn {
		if rowIsD[p] {
			ptn[p] = ppa.Word(dest)
		}
	}
	sow[dest*np+dest] = 0

	scratch := make([]ppa.Word, size)
	payload := make([]ppa.Word, size)
	iterations := 0
	for {
		iterations++
		if iterations > maxIter {
			return nil, fmt.Errorf("hypercube: DP did not converge within %d rounds", maxIter)
		}

		// Column broadcast of row d, then local add of W.
		copy(scratch, sow)
		m.BroadcastMasked(colDims, rowIsD, scratch, inf)
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range scratch {
			scratch[p] = ppa.SatAdd(scratch[p], w[p], h)
		}
		assignWhere(sow, scratch, notD)

		// Row arg-min reduction.
		copy(scratch, sow)
		copy(payload, colIndex)
		m.ReduceMinPair(rowDims, scratch, payload)
		assignWhere(minSOW, scratch, notD)
		assignWhere(ptn, payload, notD)

		// Fold the per-row results back into row d via the diagonal.
		newRow := append([]ppa.Word(nil), minSOW...)
		m.BroadcastMasked(colDims, diagMask, newRow, inf)
		newPTN := append([]ppa.Word(nil), ptn...)
		m.BroadcastMasked(colDims, diagMask, newPTN, inf)
		m.CountInstr()
		m.CountPE(int64(size))
		for p := range changed {
			changed[p] = false
			if rowIsD[p] {
				oldSOW[p] = sow[p]
				sow[p] = newRow[p]
				if sow[p] != oldSOW[p] {
					changed[p] = true
					ptn[p] = newPTN[p]
				}
			}
		}
		if !m.GlobalOr(changed) {
			break
		}
	}

	res := &Result{
		Result: graph.Result{
			Dest:       dest,
			Dist:       make([]int64, n),
			Next:       make([]int, n),
			Iterations: iterations,
		},
		Metrics: m.Metrics(),
		Bits:    h,
		PaddedN: np,
	}
	for i := 0; i < n; i++ {
		s := sow[dest*np+i]
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case s == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(s)
			res.Next[i] = int(ptn[dest*np+i])
		}
	}
	return res, nil
}

// padToPow2 returns the smallest power of two >= n and its log2.
func padToPow2(n int) (np int, logNp uint) {
	np = 1
	for np < n {
		np <<= 1
		logNp++
	}
	return np, logNp
}

// loadWeights builds the padded machine matrix: NoEdge and the padding
// region become MAXINT, the diagonal becomes 0 (see DESIGN.md).
func loadWeights(g *graph.Graph, np int, h uint) ([]ppa.Word, error) {
	n := g.N
	inf := ppa.Infinity(h)
	w := make([]ppa.Word, np*np)
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			switch {
			case i == j:
				w[i*np+j] = 0
			case i >= n || j >= n:
				w[i*np+j] = inf
			default:
				wt := g.At(i, j)
				switch {
				case wt == graph.NoEdge:
					w[i*np+j] = inf
				case n > 1 && wt > (int64(inf)-1)/int64(n-1):
					return nil, fmt.Errorf(
						"hypercube: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT",
						h, n-1, wt)
				default:
					w[i*np+j] = ppa.Word(wt)
				}
			}
		}
	}
	return w, nil
}

// PredictedRouterCycles is the analytical router-cycle model of one
// SolveMCP run on a padded side np = 2^logNp with a word-wide router: the
// initialization costs 2·logNp cycles and every DP round 5·logNp (one
// column broadcast, a two-word row reduction, two diagonal broadcasts).
// With BitSerialRouter the total multiplies by h.
func PredictedRouterCycles(logNp uint, iters int) int64 {
	return int64(iters)*5*int64(logNp) + 2*int64(logNp)
}
