// Robot navigation: the mesh-structured workload the paper's introduction
// motivates. A robot plans minimum-cost routes to a goal across a grid
// world with obstacles and varying terrain cost; the grid maps naturally
// onto the processor array (one matrix element per PE), and every cell
// gets its optimal route in one solve.
package main

import (
	"fmt"
	"log"

	"ppamcp"
	"ppamcp/internal/graph"
	"ppamcp/internal/viz"
)

func main() {
	const rows, cols = 8, 8
	spec := graph.GridSpec{
		Rows: rows, Cols: cols,
		MaxW:     4,    // terrain cost 1..4 per cell
		Obstacle: 0.22, // ~1 in 5 cells is blocked
		Seed:     42,
	}
	g, blocked := graph.GenGrid(spec)
	start := 0            // top-left corner
	goal := rows*cols - 1 // bottom-right corner

	// One PPA solve computes optimal routes from EVERY cell to the goal.
	res, err := ppamcp.Solve(g, goal)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("grid world %dx%d (S=start, G=goal, #=obstacle, *=route)\n\n", rows, cols)
	path, ok := res.PathFrom(start)
	if !ok {
		fmt.Println("the start is walled off from the goal:")
		fmt.Println(viz.RenderGridPath(rows, cols, nil, blocked))
		return
	}
	fmt.Println(viz.RenderGridPath(rows, cols, path, blocked))
	fmt.Printf("route cost %d over %d moves, planned in %d DP rounds\n",
		res.Dist[start], len(path)-1, res.Iterations)
	fmt.Printf("machine cost: %v\n\n", res.Metrics)

	// Every other cell got its route in the same solve — show a few.
	for _, cell := range []int{cols - 1, (rows / 2) * cols, rows*cols - 2} {
		if res.Dist[cell] == ppamcp.NoEdge {
			fmt.Printf("cell (%d,%d): unreachable\n", cell/cols, cell%cols)
			continue
		}
		fmt.Printf("cell (%d,%d): cost %d, first move -> (%d,%d)\n",
			cell/cols, cell%cols, res.Dist[cell],
			res.Next[cell]/cols, res.Next[cell]%cols)
	}

	// Sanity: the sequential planner agrees on every cell.
	seq, err := ppamcp.Solve(g, goal, ppamcp.WithBackend(ppamcp.Sequential))
	if err != nil {
		log.Fatal(err)
	}
	for v := range res.Dist {
		if res.Dist[v] != seq.Dist[v] {
			log.Fatalf("cell %d: PPA %d vs sequential %d", v, res.Dist[v], seq.Dist[v])
		}
	}
	fmt.Println("\ncross-checked against sequential Bellman-Ford: all cells agree")
}
