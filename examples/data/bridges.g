# A toy river-crossing network: vertices 0-3 on the west bank,
# 4-7 on the east bank, two bridges (1->5 and 3->6) and local roads.
n 8
e 0 1 2
e 1 0 2
e 1 2 3
e 2 1 3
e 2 3 1
e 3 2 1
e 0 3 5
e 3 0 5
e 1 5 4
e 5 1 4
e 3 6 2
e 6 3 2
e 4 5 1
e 5 4 1
e 5 6 3
e 6 5 3
e 6 7 2
e 7 6 2
e 4 7 6
e 7 4 6
