// Image distance transform: the image-processing workload the PPA
// research line was built around. A binary image maps one pixel per PE;
// iterative shift-relaxation computes each pixel's city-block distance to
// the nearest foreground pixel. Unlike the MCP solver (bus-dominated),
// this algorithm exercises the nearest-neighbour fabric.
package main

import (
	"fmt"
	"log"
	"strings"

	"ppamcp/internal/dt"
)

func main() {
	const n = 12
	// A small scene: two blobs and a line.
	art := []string{
		"............",
		"..##........",
		"..##........",
		"............",
		"........#...",
		"........#...",
		"........#...",
		"............",
		"............",
		".#..........",
		"............",
		"............",
	}
	fg := make([]bool, n*n)
	for r, line := range art {
		for c, ch := range line {
			fg[r*n+c] = ch == '#'
		}
	}

	res, err := dt.CityBlock(n, fg, dt.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("city-block distance transform on a %dx%d PPA (h=%d bits)\n\n", n, n, res.Bits)
	fmt.Println("input (# = foreground):")
	fmt.Println(strings.Join(art, "\n"))
	fmt.Println("\ndistance field:")
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			fmt.Printf("%3d", res.Dist[r*n+c])
		}
		fmt.Println()
	}
	fmt.Printf("\nconverged in %d relaxation rounds; machine cost: %v\n", res.Rounds, res.Metrics)

	// Certify against the host-side BFS.
	want := dt.ReferenceCityBlock(n, fg, res.Inf)
	for i := range want {
		if res.Dist[i] != want[i] {
			log.Fatalf("pixel %d: PPA %d vs reference %d", i, res.Dist[i], want[i])
		}
	}
	fmt.Println("verified against host-side multi-source BFS: all pixels agree")
}
