// Virtualization: the paper assumes one weight-matrix element per PE, so
// a 32-vertex problem nominally needs a 32x32 array. This example solves
// the same problem block-mapped onto smaller and smaller physical arrays
// (internal/virt) and shows the two halves of the trade: identical
// answers, communication cost scaled by exactly k = n/m.
package main

import (
	"fmt"
	"log"
	"reflect"

	"ppamcp"
)

func main() {
	const n = 32
	g := ppamcp.GenSmallWorld(n, 2, 0.2, 9, 3)
	const dest = 7

	full, err := ppamcp.Solve(g, dest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d vertices, destination %d, h=%d bits\n\n", n, dest, full.Bits)
	fmt.Printf("%8s %4s %12s %12s %14s\n", "physical", "k", "bus cycles", "wired-OR", "stitch shifts")
	fmt.Printf("%8d %4d %12d %12d %14d   (the paper's assumption)\n",
		n, 1, full.Metrics.BusCycles, full.Metrics.WiredOrCycles, full.Metrics.ShiftSteps)

	for _, phys := range []int{16, 8, 4} {
		v, err := ppamcp.Solve(g, dest,
			ppamcp.WithPhysicalSide(phys), ppamcp.WithBits(full.Bits))
		if err != nil {
			log.Fatal(err)
		}
		if !reflect.DeepEqual(v.Dist, full.Dist) || !reflect.DeepEqual(v.Next, full.Next) {
			log.Fatalf("physical %dx%d produced different answers", phys, phys)
		}
		fmt.Printf("%8d %4d %12d %12d %14d\n",
			phys, n/phys, v.Metrics.BusCycles, v.Metrics.WiredOrCycles, v.Metrics.ShiftSteps)
	}

	fmt.Println("\nall runs produced identical distances and next-hop pointers;")
	fmt.Println("each halving of the physical side doubles the bus and wired-OR cycles —")
	fmt.Println("the classic SIMD virtualization law, measured (experiment E6).")
}
