// Bandwidth routing: the widest-path (maximum-bottleneck) problem, the
// (max, min) semiring dual of the paper's minimum cost path. Each link of
// a network has a capacity; a flow from v to the uplink is limited by the
// narrowest link on its route, and every host wants the route that
// maximizes that bottleneck. The same PPA, the same programming layer —
// only the reduction flips from bit-serial min to bit-serial max.
package main

import (
	"fmt"
	"log"

	"ppamcp"
)

func main() {
	const n = 14
	// A scale-free network with link capacities 1..40 Mbit-ish.
	g := ppamcp.GenScaleFree(n, 2, 40, 21)
	const uplink = 0

	widest, metrics, err := ppamcp.SolveWidest(g, uplink)
	if err != nil {
		log.Fatal(err)
	}
	if err := ppamcp.VerifyWidest(g, widest); err != nil {
		log.Fatal(err)
	}

	// For contrast: the cheapest (fewest-milliseconds, treating weight as
	// latency) routes from the ordinary MCP solve.
	cheapest, err := ppamcp.Solve(g, uplink)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("routes to the uplink (vertex %d) over a %d-host network:\n\n", uplink, n)
	fmt.Printf("%6s %18s %22s\n", "host", "max bandwidth", "min-cost next hop vs")
	fmt.Printf("%6s %18s %22s\n", "", "(bottleneck, via)", "max-bandwidth next hop")
	differ := 0
	for v := 1; v < n; v++ {
		fmt.Printf("%6d %12d via %-3d %10d vs %-3d", v, widest.Cap[v], widest.Next[v],
			cheapest.Next[v], widest.Next[v])
		if widest.Next[v] != cheapest.Next[v] {
			fmt.Print("   <- routes diverge")
			differ++
		}
		fmt.Println()
	}
	fmt.Printf("\n%d of %d hosts route differently for bandwidth than for cost\n", differ, n-1)
	fmt.Printf("machine cost of the widest-path solve: %v\n", metrics)
	fmt.Printf("(DP rounds: %d — same Θ(p·h) structure as the paper's MCP)\n", widest.Iterations)
}
