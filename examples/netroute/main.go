// Network routing tables: compute the full next-hop routing table of a
// random network — one single-destination MCP solve per destination, i.e.
// the all-pairs problem the dynamic-programming formulation was built for
// on the Connection Machine and the GCN. Compares the PPA's aggregate
// machine cost against the sequential baseline's work.
package main

import (
	"fmt"
	"log"

	"ppamcp"
)

func main() {
	const n = 12
	g := ppamcp.GenSmallWorld(n, 2, 0.25, 9, 7)

	fmt.Printf("network: %d routers, %d links (small-world topology)\n\n", n, g.Edges())

	// One Session reuses the simulated machine and loaded weight matrix
	// across all n destination solves.
	session, err := ppamcp.NewSession(g)
	if err != nil {
		log.Fatal(err)
	}

	// nextHop[src][dst] is the neighbour src forwards to for dst.
	nextHop := make([][]int, n)
	for i := range nextHop {
		nextHop[i] = make([]int, n)
	}
	var totalComm, totalRelax int64
	var rounds int
	for dst := 0; dst < n; dst++ {
		res, err := session.Solve(dst)
		if err != nil {
			log.Fatal(err)
		}
		if err := ppamcp.Verify(g, res); err != nil {
			log.Fatalf("dest %d: %v", dst, err)
		}
		for src := 0; src < n; src++ {
			nextHop[src][dst] = res.Next[src]
		}
		totalComm += res.Metrics.CommCycles()
		rounds += res.Iterations

		seq, err := ppamcp.Solve(g, dst, ppamcp.WithBackend(ppamcp.Sequential))
		if err != nil {
			log.Fatal(err)
		}
		totalRelax += seq.Relaxations
	}

	fmt.Println("next-hop routing table (row = source, column = destination):")
	fmt.Print("     ")
	for dst := 0; dst < n; dst++ {
		fmt.Printf("%3d", dst)
	}
	fmt.Println()
	for src := 0; src < n; src++ {
		fmt.Printf("  %2d ", src)
		for dst := 0; dst < n; dst++ {
			if src == dst {
				fmt.Printf("%3s", ".")
			} else {
				fmt.Printf("%3d", nextHop[src][dst])
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nall %d tables: %d PPA communication cycles total (%d DP rounds)\n",
		n, totalComm, rounds)
	fmt.Printf("sequential Bellman-Ford does %d edge relaxations for the same tables\n", totalRelax)
	fmt.Println("(each PPA round is n^2-wide: the cycle count is the critical path, not work)")
}
