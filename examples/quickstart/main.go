// Quickstart: build a small graph, solve minimum cost paths to one
// destination on the simulated Polymorphic Processor Array, and inspect
// the result — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"ppamcp"
)

func main() {
	// A small delivery network: weights are travel minutes.
	//
	//	0 --2--> 1 --2--> 3     0 --9--> 3 (slow direct road)
	//	0 --4--> 2 --1--> 3
	g := ppamcp.NewGraph(4)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 3, 2)
	g.SetEdge(0, 2, 4)
	g.SetEdge(2, 3, 1)
	g.SetEdge(0, 3, 9)

	// Solve on the PPA (the default backend). The library picks the
	// smallest machine word width that fits every path cost.
	res, err := ppamcp.Solve(g, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("destination 3, solved on %s in %d DP rounds (h=%d bits)\n\n",
		res.Backend, res.Iterations, res.Bits)
	for v := range res.Dist {
		if res.Dist[v] == ppamcp.NoEdge {
			fmt.Printf("  vertex %d: unreachable\n", v)
			continue
		}
		path, _ := res.PathFrom(v)
		fmt.Printf("  vertex %d: cost %-2d via %v\n", v, res.Dist[v], path)
	}

	// The simulator charges every communication to an abstract cost model:
	// this is what the paper's O(p·h) analysis is about.
	fmt.Printf("\nmachine cost: %v\n", res.Metrics)

	// Certify the answer without trusting the solver.
	if err := ppamcp.Verify(g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: witness paths exist and no edge can relax any distance")

	// Compare with the plain-mesh baseline: same answers, many more steps.
	meshRes, err := ppamcp.Solve(g, 3, ppamcp.WithBackend(ppamcp.Mesh))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplain mesh needs %d shift steps for the same answer (PPA: %d bus transactions)\n",
		meshRes.Metrics.ShiftSteps, res.Metrics.BusCycles+res.Metrics.WiredOrCycles)
}
