// The paper, verbatim: compile the IPPS'98 minimum_cost_path() listing
// with the from-scratch Polymorphic Parallel C front end, execute it on
// the simulated PPA, and show that it produces exactly the same result —
// and exactly the same bus traffic — as the native Go implementation.
// This is experiment E5 as a narrative.
package main

import (
	"fmt"
	"log"

	"ppamcp/internal/bench"
	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/viz"
)

func main() {
	fmt.Println("=== The paper's PPC source (see ppclang.PaperMCPSource) ===")
	fmt.Println("(print it with: go run ./cmd/ppcrun -show-source)")

	g := graph.GenRandomConnected(8, 0.3, 9, 99)
	dest := 5

	native, err := core.Solve(g, dest, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ppcRes, ppcMetrics, err := bench.RunPaperPPC(g, dest, native.Bits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nworkload: %v, destination %d, machine %dx%d at h=%d bits\n\n",
		g, dest, g.N, g.N, native.Bits)
	fmt.Println("native Go solver:")
	fmt.Print(viz.RenderDistances(&native.Result))
	fmt.Println("\ninterpreted PPC program:")
	fmt.Print(viz.RenderDistances(ppcRes))

	same := true
	for i := 0; i < g.N; i++ {
		if native.Dist[i] != ppcRes.Dist[i] || native.Next[i] != ppcRes.Next[i] {
			same = false
		}
	}
	fmt.Printf("\noutputs identical: %v\n", same)
	fmt.Printf("native comm:  bus=%d wiredOR=%d globalOR=%d\n",
		native.Metrics.BusCycles, native.Metrics.WiredOrCycles, native.Metrics.GlobalOrOps)
	fmt.Printf("PPC comm:     bus=%d wiredOR=%d globalOR=%d\n",
		ppcMetrics.BusCycles, ppcMetrics.WiredOrCycles, ppcMetrics.GlobalOrOps)
	cyclesEqual := native.Metrics.BusCycles == ppcMetrics.BusCycles &&
		native.Metrics.WiredOrCycles == ppcMetrics.WiredOrCycles &&
		native.Metrics.GlobalOrOps == ppcMetrics.GlobalOrOps
	fmt.Printf("bus traffic identical: %v\n", cyclesEqual)
	if !same || !cyclesEqual {
		log.Fatal("E5 FAILED: the PPC program diverged from the native solver")
	}

	// Bonus: demonstrate the documented erratum in the printed listing
	// (statement 5 loads row d of W where the DP needs column d).
	bad := graph.New(2)
	bad.SetEdge(1, 0, 1) // directed: 0 cannot reach 1
	wrong, err := core.Solve(bad, 1, core.Options{PaperInit: true})
	if err != nil {
		log.Fatal(err)
	}
	right, err := core.Solve(bad, 1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerratum demo (edge 1->0 only, dest 1): paper-verbatim init says dist(0)=%d;"+
		" corrected init says unreachable=%v\n",
		wrong.Dist[0], right.Dist[0] == graph.NoEdge)
}
