// Package ppamcp is a faithful reproduction of "A Parallel Algorithm for
// Minimum Cost Path Computation on Polymorphic Processor Array"
// (Baglietto, Maresca, Migliardi — IPPS 1998): a cycle-counting simulator
// of the Polymorphic Processor Array, the paper's single-destination
// minimum-cost-path algorithm on it, the Polymorphic Parallel C language
// the paper expressed it in, and the comparator architectures the paper
// claims complexity parity with (Connection Machine hypercube, Gated
// Connection Network) or improves on (the plain mesh).
//
// This file is the public facade: build a Graph, call Solve with the
// backend of your choice, and read distances, next-hop pointers, and the
// abstract machine cost of the computation.
//
//	g := ppamcp.NewGraph(4)
//	g.SetEdge(0, 1, 2)
//	g.SetEdge(1, 3, 2)
//	res, err := ppamcp.Solve(g, 3, ppamcp.WithBackend(ppamcp.PPA))
//	path, ok := res.PathFrom(0) // [0 1 3]
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's complexity claims.
package ppamcp

import (
	"fmt"

	"ppamcp/internal/apsp"
	"ppamcp/internal/core"
	"ppamcp/internal/gcn"
	"ppamcp/internal/graph"
	"ppamcp/internal/hypercube"
	"ppamcp/internal/mesh"
	"ppamcp/internal/ppa"
)

// Graph is a dense weighted directed graph (see NewGraph).
type Graph = graph.Graph

// Result carries per-vertex distances and next-hop pointers.
type SolutionBase = graph.Result

// Metrics is the abstract machine cost accounting shared by all backends.
type Metrics = ppa.Metrics

// NoEdge marks a missing edge in Graph.
const NoEdge = graph.NoEdge

// NewGraph returns an n-vertex graph with no edges.
func NewGraph(n int) *Graph { return graph.New(n) }

// Generators re-exported for building workloads.
var (
	// GenRandom builds a random directed graph (n, edge density, max
	// weight, seed).
	GenRandom = graph.GenRandom
	// GenRandomConnected additionally guarantees strong connectivity.
	GenRandomConnected = graph.GenRandomConnected
	// GenChain builds the path 0 -> 1 -> ... -> n-1.
	GenChain = graph.GenChain
	// GenGrid builds a 4-connected grid world.
	GenGrid = graph.GenGrid
	// GenDiameter builds a graph with exact MCP diameter p to vertex 0.
	GenDiameter = graph.GenDiameter
	// GenSmallWorld builds a Watts-Strogatz network (n, k, beta, maxW, seed).
	GenSmallWorld = graph.GenSmallWorld
	// GenScaleFree builds a Barabasi-Albert network (n, m, maxW, seed).
	GenScaleFree = graph.GenScaleFree
)

// Backend selects the architecture Solve runs on.
type Backend int

// Available backends.
const (
	// PPA is the paper's Polymorphic Processor Array (the default).
	PPA Backend = iota
	// GCN is the Gated Connection Network comparator.
	GCN
	// Hypercube is the Connection Machine comparator.
	Hypercube
	// Mesh is the plain (non-reconfigurable) mesh baseline.
	Mesh
	// Sequential is host-side Bellman-Ford (the paper's DP, serialized).
	Sequential
	// SequentialDijkstra is the fast host-side baseline.
	SequentialDijkstra
)

func (b Backend) String() string {
	switch b {
	case PPA:
		return "ppa"
	case GCN:
		return "gcn"
	case Hypercube:
		return "hypercube"
	case Mesh:
		return "mesh"
	case Sequential:
		return "bellman-ford"
	case SequentialDijkstra:
		return "dijkstra"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend converts a name ("ppa", "gcn", "hypercube", "mesh",
// "bellman-ford", "dijkstra") to a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "ppa", "PPA":
		return PPA, nil
	case "gcn", "GCN":
		return GCN, nil
	case "hypercube", "cube", "cm":
		return Hypercube, nil
	case "mesh":
		return Mesh, nil
	case "bellman-ford", "bf", "sequential":
		return Sequential, nil
	case "dijkstra":
		return SequentialDijkstra, nil
	}
	return 0, fmt.Errorf("ppamcp: unknown backend %q", s)
}

// Result is the outcome of Solve.
type Result struct {
	graph.Result
	// Backend that produced the result.
	Backend Backend
	// Metrics is the abstract machine cost (zero for sequential backends;
	// their work shows up in Result.Relaxations instead).
	Metrics Metrics
	// Bits is the machine word width used (0 for sequential backends).
	Bits uint
}

// options collects Solve configuration.
type options struct {
	backend  Backend
	bits     uint
	workers  int
	physSide int
}

// Option configures Solve.
type Option func(*options)

// WithBackend selects the architecture (default PPA).
func WithBackend(b Backend) Option { return func(o *options) { o.backend = b } }

// WithBits fixes the machine word width h (default: smallest width that
// fits every path cost).
func WithBits(h uint) Option { return func(o *options) { o.bits = h } }

// WithWorkers sets simulator goroutine fan-out for the PPA and mesh
// backends (results are identical for any value).
func WithWorkers(w int) Option { return func(o *options) { o.workers = w } }

// WithPhysicalSide runs the PPA backend block-mapped on an m x m physical
// array (m must divide the vertex count): identical answers, communication
// cost scaled by k = n/m. Ignored by other backends.
func WithPhysicalSide(m int) Option { return func(o *options) { o.physSide = m } }

// Solve computes minimum cost paths from every vertex of g to dest.
func Solve(g *Graph, dest int, opts ...Option) (*Result, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	switch o.backend {
	case PPA:
		r, err := core.Solve(g, dest, core.Options{Bits: o.bits, Workers: o.workers, PhysicalSide: o.physSide})
		if err != nil {
			return nil, err
		}
		return &Result{Result: r.Result, Backend: PPA, Metrics: r.Metrics, Bits: r.Bits}, nil
	case GCN:
		r, err := gcn.SolveMCP(g, dest, gcn.Options{Bits: o.bits})
		if err != nil {
			return nil, err
		}
		return &Result{Result: r.Result, Backend: GCN, Metrics: r.Metrics, Bits: r.Bits}, nil
	case Hypercube:
		r, err := hypercube.SolveMCP(g, dest, hypercube.Options{Bits: o.bits})
		if err != nil {
			return nil, err
		}
		return &Result{Result: r.Result, Backend: Hypercube, Metrics: r.Metrics, Bits: r.Bits}, nil
	case Mesh:
		r, err := mesh.SolveMCP(g, dest, mesh.Options{Bits: o.bits, Workers: o.workers})
		if err != nil {
			return nil, err
		}
		return &Result{Result: r.Result, Backend: Mesh, Metrics: r.Metrics, Bits: r.Bits}, nil
	case Sequential:
		r, err := graph.BellmanFord(g, dest)
		if err != nil {
			return nil, err
		}
		return &Result{Result: *r, Backend: Sequential}, nil
	case SequentialDijkstra:
		r, err := graph.Dijkstra(g, dest)
		if err != nil {
			return nil, err
		}
		return &Result{Result: *r, Backend: SequentialDijkstra}, nil
	}
	return nil, fmt.Errorf("ppamcp: unknown backend %v", o.backend)
}

// Verify certifies that res is a correct and optimal solution for g
// without trusting the solver (witness paths plus no-relaxable-edge).
func Verify(g *Graph, res *Result) error {
	return graph.CheckResult(g, &res.Result)
}

// Session amortizes machine construction and weight loading across many
// solves on the same graph. Use it when solving several destinations
// (SolveAllPairs does this internally, one session per worker goroutine).
// Not safe for concurrent use.
type Session struct {
	inner *core.Session
}

// NewSession builds a reusable solving session for g (PPA backend).
func NewSession(g *Graph, opts ...Option) (*Session, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	inner, err := core.NewSession(g, core.Options{Bits: o.bits, Workers: o.workers, PhysicalSide: o.physSide})
	if err != nil {
		return nil, err
	}
	return &Session{inner: inner}, nil
}

// Solve runs the DP for one destination on the session's machine.
func (s *Session) Solve(dest int) (*Result, error) {
	r, err := s.inner.Solve(dest)
	if err != nil {
		return nil, err
	}
	return &Result{Result: r.Result, Backend: PPA, Metrics: r.Metrics, Bits: r.Bits}, nil
}

// WidestResult is the widest-path solution (see SolveWidest).
type WidestResult = graph.WidestResult

// Unbounded is the destination's own capacity in a WidestResult.
const Unbounded = graph.Unbounded

// SolveWidest computes single-destination widest (maximum-bottleneck)
// paths on the PPA — the (max, min) semiring dual of Solve, for
// capacity/bandwidth routing. Cap[v] is the best achievable bottleneck
// from v to dest (0 if unreachable, Unbounded for dest itself).
func SolveWidest(g *Graph, dest int, opts ...Option) (*WidestResult, Metrics, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return core.SolveWidest(g, dest, core.Options{Bits: o.bits, Workers: o.workers})
}

// VerifyWidest certifies a widest-path solution without trusting the
// solver (witness bottlenecks plus no-improving-edge).
func VerifyWidest(g *Graph, r *WidestResult) error {
	return graph.CheckWidestResult(g, r)
}

// AllPairs is the all-pairs solution (see SolveAllPairs).
type AllPairs = core.AllPairs

// SolveAllPairs computes the complete distance and next-hop matrices by
// running the PPA algorithm once per destination (the routing-table use
// case). Options other than the backend apply; the backend is always PPA.
func SolveAllPairs(g *Graph, opts ...Option) (*AllPairs, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return core.SolveAllPairs(g, core.Options{Bits: o.bits, Workers: o.workers, PhysicalSide: o.physSide})
}

// SquaringResult is the matrix-squaring all-pairs solution (see
// SolveAllPairsSquaring).
type SquaringResult = apsp.Result

// SolveAllPairsSquaring computes all-pairs distances with min-plus matrix
// squaring (Cannon products on the torus) instead of n runs of the
// paper's DP — the shift-fabric alternative measured by experiment E8.
// It produces distances only; use SolveAllPairs for next-hop matrices.
func SolveAllPairsSquaring(g *Graph, opts ...Option) (*SquaringResult, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return apsp.Solve(g, apsp.Options{Bits: o.bits, Workers: o.workers})
}

// SourceResult is the single-source solution (see SolveFromSource).
type SourceResult = core.SourceResult

// SolveFromSource computes minimum cost paths *from* one source to every
// vertex (the paper's algorithm run on the transposed weight matrix).
func SolveFromSource(g *Graph, source int, opts ...Option) (*SourceResult, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return core.SolveFromSource(g, source, core.Options{Bits: o.bits, Workers: o.workers, PhysicalSide: o.physSide})
}
