module ppamcp

go 1.22
