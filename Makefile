# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test race cover bench bench-json bench-fleet-json bench-tables-json pprof tables fuzz examples serve route loadtest loadtest-json fleet-json clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Machine-readable benchmark snapshot for the current PR: E1-E6 cycle
# tables plus the wall-clock rows, including the incremental re-solve
# curve (k weight edits through Session.Update + warm Resolve vs the same
# edits replayed as full Reload + cold Solve, k in {1, 4, 16, 64}) and
# the warm incremental all-pairs curve (Update + ResolveSweep over all 64
# destinations vs Reload + cold SolveSweep, same k values).
bench-json:
	$(GO) run ./cmd/benchtab -json > BENCH_PR10.json

# Fleet scaling benchmark behind the consistent-hash router: for each
# fleet size boot that many in-process ppaserved backends behind an
# in-process pparouter and run a cache-miss row (backend scaling) and a
# Zipf row (front-door cache). -backend-delay emulates fixed per-batch
# device occupancy so the scaling curve is measurable on small hosts.
bench-fleet-json:
	$(GO) run ./cmd/ppaload -fleet 1,2,4 -gen connected -n 32 -seed 1 \
		-graphs 32 -c 32 -requests 8 -dests 1 -backend-delay 16ms -json > BENCH_PR7.json

# Machine-readable snapshot: E1-E6 cycle tables + wall-clock solve cost
# (including the workers-scaling curve, the fused-vs-reference session
# ablation, the virtualization curve k = n/m in {1, 2, 4, 8}, and the
# PPC bytecode-vs-reference execution curve).
bench-tables-json:
	$(GO) run ./cmd/benchtab -json > BENCH_PR6.json

# CPU profile of the simulator's hot path (repeated n=64 session solves);
# inspect with `go tool pprof solve.pprof`.
pprof:
	$(GO) test -run=NONE -bench=BenchmarkSolveWallClock/n=64/session$$ -benchtime=2s -cpuprofile=solve.pprof .

# Run the solver service on :8080 (see README "Serving").
serve:
	$(GO) run ./cmd/ppaserved

# Run the fleet router on :8080 (see README "Scaling out"); point
# BACKENDS at comma-separated ppaserved URLs.
route:
	$(GO) run ./cmd/pparouter -backends $(BACKENDS)

# Same fleet sweep as bench-json, to stdout for a quick look.
fleet-json:
	$(GO) run ./cmd/ppaload -fleet 1,2,4 -gen connected -n 32 -seed 1 \
		-graphs 32 -c 32 -requests 8 -dests 1 -backend-delay 16ms -json

# Closed-loop load test against an in-process server; every response is
# verified against Bellman-Ford. Point at a live server with
#   go run ./cmd/ppaload -url http://localhost:8080 ...
loadtest:
	$(GO) run ./cmd/ppaload -selfserve -gen connected -n 64 -seed 7 -c 32 -requests 10

# Machine-readable serving throughput snapshot.
loadtest-json:
	$(GO) run ./cmd/ppaload -selfserve -gen connected -n 64 -seed 7 -c 32 -requests 10 -json > BENCH_PR2.json

# Regenerate every experiment table (E1-E8); see EXPERIMENTS.md.
tables:
	$(GO) run ./cmd/benchtab

# Refresh the golden snapshot after an intentional cost-model change.
golden:
	$(GO) run ./cmd/benchtab > internal/bench/testdata/benchtab.golden

fuzz:
	$(GO) test -fuzz=FuzzCompile -fuzztime=30s ./internal/ppclang/
	$(GO) test -fuzz=FuzzDiffExec -fuzztime=30s ./internal/ppclang/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/graph/
	$(GO) test -fuzz=FuzzUpdateResolve -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzResolveSweep -fuzztime=30s ./internal/core/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/robotnav
	$(GO) run ./examples/netroute
	$(GO) run ./examples/ppcpaper
	$(GO) run ./examples/imagedt
	$(GO) run ./examples/virtualized

clean:
	$(GO) clean ./...
