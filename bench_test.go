package ppamcp

// One testing.B benchmark per experiment in DESIGN.md's index. Each
// reports, besides wall time (which measures the *simulator*, not the
// architecture), the abstract machine cost as custom metrics — those are
// the numbers EXPERIMENTS.md compares against the paper's claims.
// Regenerate the full tables with: go run ./cmd/benchtab

import (
	"fmt"
	"testing"

	"ppamcp/internal/bench"
	"ppamcp/internal/core"
	"ppamcp/internal/gcn"
	"ppamcp/internal/graph"
	"ppamcp/internal/hypercube"
	"ppamcp/internal/mesh"
	"ppamcp/internal/ppclang"
)

// BenchmarkE1BitSerialMin measures the bit-serial min: Θ(h) bus
// transactions, flat in n (claim §3).
func BenchmarkE1BitSerialMin(b *testing.B) {
	for _, h := range []uint{8, 16, 32} {
		for _, n := range []int{8, 32, 128} {
			b.Run(fmt.Sprintf("h=%d/n=%d", h, n), func(b *testing.B) {
				var comm int64
				for i := 0; i < b.N; i++ {
					m := bench.MeasureMin(n, h, 1)
					comm = m.CommCycles()
				}
				b.ReportMetric(float64(comm), "commCycles/op")
			})
		}
	}
}

// BenchmarkE2IterationScaling measures full MCP solves across the exact
// diameter p: Θ(p·h) total (claims §3/§4).
func BenchmarkE2IterationScaling(b *testing.B) {
	const n = 32
	for _, p := range []int{1, 4, 16, 31} {
		g := graph.GenDiameter(n, p)
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var comm int64
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(g, 0, core.Options{Bits: 16})
				if err != nil {
					b.Fatal(err)
				}
				comm = r.Metrics.CommCycles()
			}
			b.ReportMetric(float64(comm), "commCycles/op")
		})
	}
}

// BenchmarkE3Architectures runs the same workload on all four machines
// (claim §1/§4: PPA ≈ CM hypercube ≈ GCN; all beat the plain mesh as n
// grows past h).
func BenchmarkE3Architectures(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		g := graph.GenRandomConnected(n, 0.3, 9, int64(n))
		dest := n / 2
		b.Run(fmt.Sprintf("ppa/n=%d", n), func(b *testing.B) {
			var comm int64
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(g, dest, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				comm = r.Metrics.CommCycles()
			}
			b.ReportMetric(float64(comm), "commCycles/op")
		})
		b.Run(fmt.Sprintf("gcn/n=%d", n), func(b *testing.B) {
			var comm int64
			for i := 0; i < b.N; i++ {
				r, err := gcn.SolveMCP(g, dest, gcn.Options{})
				if err != nil {
					b.Fatal(err)
				}
				comm = r.Metrics.CommCycles()
			}
			b.ReportMetric(float64(comm), "commCycles/op")
		})
		b.Run(fmt.Sprintf("hypercube/n=%d", n), func(b *testing.B) {
			var router int64
			for i := 0; i < b.N; i++ {
				r, err := hypercube.SolveMCP(g, dest, hypercube.Options{})
				if err != nil {
					b.Fatal(err)
				}
				router = r.Metrics.RouterCycles
			}
			b.ReportMetric(float64(router), "routerCycles/op")
		})
		b.Run(fmt.Sprintf("mesh/n=%d", n), func(b *testing.B) {
			var shifts int64
			for i := 0; i < b.N; i++ {
				r, err := mesh.SolveMCP(g, dest, mesh.Options{})
				if err != nil {
					b.Fatal(err)
				}
				shifts = r.Metrics.ShiftSteps
			}
			b.ReportMetric(float64(shifts), "shiftSteps/op")
		})
		b.Run(fmt.Sprintf("bellmanford/n=%d", n), func(b *testing.B) {
			var relax int64
			for i := 0; i < b.N; i++ {
				r, err := graph.BellmanFord(g, dest)
				if err != nil {
					b.Fatal(err)
				}
				relax = r.Relaxations
			}
			b.ReportMetric(float64(relax), "relaxations/op")
		})
	}
}

// BenchmarkE4BroadcastMicro measures one one-to-all broadcast on both
// fabrics (claim §1: the bus short-circuits intermediate nodes).
func BenchmarkE4BroadcastMicro(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bus, shifts int64
			for i := 0; i < b.N; i++ {
				bus, shifts = bench.MeasureBroadcast(n)
			}
			b.ReportMetric(float64(bus), "ppaBusCycles/op")
			b.ReportMetric(float64(shifts), "meshShiftSteps/op")
		})
	}
}

// BenchmarkE5PPCInterpreter runs the paper's PPC program end to end
// (claim §1/§2: implemented in PPC, validated through simulation). The
// wall-time gap to the native solver is interpreter overhead; the
// commCycles metric is identical by construction (tested in
// internal/ppclang and internal/bench).
func BenchmarkE5PPCInterpreter(b *testing.B) {
	g := graph.GenRandomConnected(10, 0.3, 9, 3)
	native, err := core.Solve(g, 9, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// ppc-bytecode vs ppc-reference is the compiler's win: same program,
	// same metrics, different host dispatch (flat opcodes vs AST walk).
	b.Run("ppc-bytecode", func(b *testing.B) {
		var comm int64
		for i := 0; i < b.N; i++ {
			_, m, err := bench.RunPaperPPC(g, 9, native.Bits)
			if err != nil {
				b.Fatal(err)
			}
			comm = m.CommCycles()
		}
		b.ReportMetric(float64(comm), "commCycles/op")
	})
	b.Run("ppc-reference", func(b *testing.B) {
		var comm int64
		for i := 0; i < b.N; i++ {
			_, m, err := bench.RunPaperPPC(g, 9, native.Bits, ppclang.WithReference(true))
			if err != nil {
				b.Fatal(err)
			}
			comm = m.CommCycles()
		}
		b.ReportMetric(float64(comm), "commCycles/op")
	})
	b.Run("native", func(b *testing.B) {
		var comm int64
		for i := 0; i < b.N; i++ {
			r, err := core.Solve(g, 9, core.Options{Bits: native.Bits})
			if err != nil {
				b.Fatal(err)
			}
			comm = r.Metrics.CommCycles()
		}
		b.ReportMetric(float64(comm), "commCycles/op")
	})
}

// BenchmarkE6Virtualized measures the block-mapped solver (extension):
// physical bus/wired-OR cycles scale by exactly k = n/m.
func BenchmarkE6Virtualized(b *testing.B) {
	g := graph.GenRandomConnected(32, 0.3, 9, 7)
	base, err := core.Solve(g, 1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, phys := range []int{32, 16, 8, 4} {
		b.Run(fmt.Sprintf("phys=%d", phys), func(b *testing.B) {
			var comm int64
			for i := 0; i < b.N; i++ {
				r, err := core.Solve(g, 1, core.Options{PhysicalSide: phys, Bits: base.Bits})
				if err != nil {
					b.Fatal(err)
				}
				comm = r.Metrics.BusCycles + r.Metrics.WiredOrCycles
			}
			b.ReportMetric(float64(comm), "physBusWOR/op")
		})
	}
}

// BenchmarkSolveWallClock is a plain host-performance benchmark of the
// simulator itself (not an experiment): how fast the Go implementation
// simulates one full solve, serially, with the ring worker pool, and
// with a reused Session.
func BenchmarkSolveWallClock(b *testing.B) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("n=64/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(g, 1, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("n=64/session", func(b *testing.B) {
		s, err := core.NewSession(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The interpretive-kernel ablation of the same session path: the gap
	// to n=64/session is what the fused bit-sliced kernels buy.
	b.Run("n=64/session-reference", func(b *testing.B) {
		s, err := core.NewSession(g, core.Options{ReferenceKernels: true})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Virtualization curve: the same warm-session workload block-mapped
	// onto an m x m physical array (k = 64/m within-block planes per
	// logical transaction). phys=64 is the k=1 sanity point (direct
	// execution).
	for _, phys := range []int{64, 32, 16, 8} {
		b.Run(fmt.Sprintf("n=64/virt-m=%d", phys), func(b *testing.B) {
			b.ReportAllocs()
			s, err := core.NewSession(g, core.Options{PhysicalSide: phys})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
