package ppamcp

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestSolveQuickstart(t *testing.T) {
	g := NewGraph(4)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 3, 2)
	g.SetEdge(0, 3, 9)
	res, err := Solve(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != PPA || res.Dist[0] != 4 {
		t.Errorf("res = %+v", res)
	}
	path, ok := res.PathFrom(0)
	if !ok || !reflect.DeepEqual(path, []int{0, 1, 3}) {
		t.Errorf("path = %v, %v", path, ok)
	}
	if err := Verify(g, res); err != nil {
		t.Error(err)
	}
	if res.Metrics.CommCycles() == 0 {
		t.Error("no cycles counted")
	}
}

// TestAllBackendsAgree is the facade-level cross-check: every backend
// produces identical distances on random graphs (and the parallel ones
// identical Next/Iterations too).
func TestAllBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	backends := []Backend{PPA, GCN, Hypercube, Mesh, Sequential, SequentialDijkstra}
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(11)
		g := GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		dest := rng.Intn(n)
		ref, err := Solve(g, dest, WithBackend(PPA))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range backends[1:] {
			r, err := Solve(g, dest, WithBackend(b))
			if err != nil {
				t.Fatalf("trial %d backend %v: %v", trial, b, err)
			}
			if !reflect.DeepEqual(ref.Dist, r.Dist) {
				t.Fatalf("trial %d: %v distances diverge\nppa: %v\n%v: %v",
					trial, b, ref.Dist, b, r.Dist)
			}
			if b != SequentialDijkstra {
				if !reflect.DeepEqual(ref.Next, r.Next) || ref.Iterations != r.Iterations {
					t.Fatalf("trial %d: %v Next/Iterations diverge", trial, b)
				}
			}
			if err := Verify(g, r); err != nil {
				t.Fatalf("trial %d backend %v: %v", trial, b, err)
			}
		}
	}
}

func TestSolveOptions(t *testing.T) {
	g := GenChain(6, 2)
	r, err := Solve(g, 5, WithBits(16), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bits != 16 {
		t.Errorf("Bits = %d", r.Bits)
	}
	if _, err := Solve(g, 9); err == nil {
		t.Error("bad dest accepted")
	}
	if _, err := Solve(g, 0, WithBackend(Backend(99))); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestBackendStringAndParse(t *testing.T) {
	for _, b := range []Backend{PPA, GCN, Hypercube, Mesh, Sequential, SequentialDijkstra} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("round trip %v: %v %v", b, got, err)
		}
	}
	if _, err := ParseBackend("quantum"); err == nil {
		t.Error("unknown backend name accepted")
	}
	if Backend(42).String() == "" {
		t.Error("unknown backend String empty")
	}
	for _, alias := range []string{"bf", "sequential", "cube", "cm", "PPA", "GCN"} {
		if _, err := ParseBackend(alias); err != nil {
			t.Errorf("alias %q rejected", alias)
		}
	}
}

func TestSolveAllPairsFacade(t *testing.T) {
	g := GenRandomConnected(6, 0.3, 9, 2)
	ap, err := SolveAllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			path, ok := ap.Path(i, j)
			if !ok || path[0] != i || path[len(path)-1] != j {
				t.Fatalf("path %d->%d: %v %v", i, j, path, ok)
			}
		}
	}
}

func TestSessionFacade(t *testing.T) {
	g := GenRandomConnected(8, 0.3, 9, 10)
	s, err := NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	for dest := 0; dest < g.N; dest++ {
		fromSession, err := s.Solve(dest)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := Solve(g, dest, WithBits(fromSession.Bits))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromSession.Dist, oneShot.Dist) {
			t.Fatalf("dest %d: session diverged", dest)
		}
		if err := Verify(g, fromSession); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Solve(99); err == nil {
		t.Error("bad dest accepted")
	}
	bad := NewGraph(2)
	bad.W[1] = -1
	if _, err := NewSession(bad); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestSolveWidestFacade(t *testing.T) {
	g := NewGraph(3)
	g.SetEdge(0, 2, 2)
	g.SetEdge(0, 1, 9)
	g.SetEdge(1, 2, 8)
	r, metrics, err := SolveWidest(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[0] != 8 || r.Cap[2] != Unbounded {
		t.Errorf("Cap = %v", r.Cap)
	}
	if metrics.CommCycles() == 0 {
		t.Error("no cycles counted")
	}
	if err := VerifyWidest(g, r); err != nil {
		t.Error(err)
	}
	if _, _, err := SolveWidest(g, 9); err == nil {
		t.Error("bad dest accepted")
	}
}

func TestSolveAllPairsSquaringFacade(t *testing.T) {
	g := GenRandomConnected(7, 0.3, 9, 6)
	sq, err := SolveAllPairsSquaring(g)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := SolveAllPairs(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sq.Dist {
		if i/7 != i%7 && sq.Dist[i] != ap.Dist[i] {
			t.Fatalf("index %d: squaring %d, DP %d", i, sq.Dist[i], ap.Dist[i])
		}
	}
}

func TestSolveFromSourceFacade(t *testing.T) {
	g := GenChain(5, 2)
	r, err := SolveFromSource(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[4] != 8 {
		t.Errorf("Dist[4] = %d, want 8", r.Dist[4])
	}
	path, ok := r.PathTo(4)
	if !ok || !reflect.DeepEqual(path, []int{0, 1, 2, 3, 4}) {
		t.Errorf("PathTo(4) = %v, %v", path, ok)
	}
}

func TestWithPhysicalSideFacade(t *testing.T) {
	g := GenRandomConnected(8, 0.3, 9, 4)
	direct, err := Solve(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Solve(g, 2, WithPhysicalSide(4), WithBits(direct.Bits))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Dist, v.Dist) {
		t.Error("virtualized facade solve diverged")
	}
	if v.Metrics.BusCycles != 2*direct.Metrics.BusCycles {
		t.Errorf("bus cycles %d, want 2x %d", v.Metrics.BusCycles, direct.Metrics.BusCycles)
	}
}

func TestSequentialBackendsError(t *testing.T) {
	g := NewGraph(3)
	if _, err := Solve(g, -1, WithBackend(Sequential)); err == nil {
		t.Error("BF bad dest accepted")
	}
	if _, err := Solve(g, 5, WithBackend(SequentialDijkstra)); err == nil {
		t.Error("Dijkstra bad dest accepted")
	}
}
