package ppamcp_test

import (
	"fmt"

	"ppamcp"
)

// The five-line tour: build a graph, solve to a destination on the
// simulated PPA, read a path back.
func ExampleSolve() {
	g := ppamcp.NewGraph(4)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 3, 2)
	g.SetEdge(0, 3, 9)

	res, err := ppamcp.Solve(g, 3)
	if err != nil {
		panic(err)
	}
	path, _ := res.PathFrom(0)
	fmt.Println(res.Dist[0], path, res.Iterations)
	// Output: 4 [0 1 3] 2
}

// Backends are interchangeable: same DP, same answers, different cost
// profiles.
func ExampleSolve_backends() {
	g := ppamcp.GenChain(5, 2)
	for _, b := range []ppamcp.Backend{ppamcp.PPA, ppamcp.Mesh, ppamcp.Hypercube} {
		res, err := ppamcp.Solve(g, 4, ppamcp.WithBackend(b))
		if err != nil {
			panic(err)
		}
		fmt.Println(b, res.Dist[0])
	}
	// Output:
	// ppa 8
	// mesh 8
	// hypercube 8
}

// Verify certifies optimality without trusting any solver.
func ExampleVerify() {
	g := ppamcp.GenChain(4, 1)
	res, _ := ppamcp.Solve(g, 3)
	fmt.Println(ppamcp.Verify(g, res))
	// Output: <nil>
}

// All-pairs routing tables come from n single-destination solves.
func ExampleSolveAllPairs() {
	g := ppamcp.NewGraph(3)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1)
	g.SetEdge(0, 2, 5)

	ap, err := ppamcp.SolveAllPairs(g)
	if err != nil {
		panic(err)
	}
	path, _ := ap.Path(0, 2)
	fmt.Println(ap.Dist[0*3+2], path)
	// Output: 2 [0 1 2]
}

// The single-source orientation uses the transpose trick.
func ExampleSolveFromSource() {
	g := ppamcp.GenChain(4, 3)
	res, err := ppamcp.SolveFromSource(g, 0)
	if err != nil {
		panic(err)
	}
	path, _ := res.PathTo(3)
	fmt.Println(res.Dist[3], path)
	// Output: 9 [0 1 2 3]
}

// Widest paths: the (max, min) dual for capacity routing.
func ExampleSolveWidest() {
	g := ppamcp.NewGraph(3)
	g.SetEdge(0, 2, 2) // narrow direct link
	g.SetEdge(0, 1, 9)
	g.SetEdge(1, 2, 8) // wide detour

	r, _, err := ppamcp.SolveWidest(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(r.Cap[0], r.Next[0])
	// Output: 8 1
}

// A Session amortizes machine setup across many solves on one graph.
func ExampleNewSession() {
	g := ppamcp.GenChain(5, 1)
	s, err := ppamcp.NewSession(g)
	if err != nil {
		panic(err)
	}
	for _, dest := range []int{4, 2} {
		res, err := s.Solve(dest)
		if err != nil {
			panic(err)
		}
		fmt.Println(dest, res.Dist[0])
	}
	// Output:
	// 4 4
	// 2 2
}

// Min-plus matrix squaring answers all pairs on the shift fabric.
func ExampleSolveAllPairsSquaring() {
	g := ppamcp.GenChain(5, 1)
	sq, err := ppamcp.SolveAllPairsSquaring(g)
	if err != nil {
		panic(err)
	}
	fmt.Println(sq.Dist[0*5+4], sq.Squarings)
	// Output: 4 3
}
