// Command ppaserved is the PPA minimum-cost-path solver service: an
// HTTP/JSON daemon that pools warm simulator sessions, micro-batches
// requests for the same graph, and sheds load once its bounded queue
// fills (see internal/serve).
//
// Endpoints:
//
//	POST   /v1/solve  {"gen": {"gen":"connected","n":64,"seed":7}, "dests": [0,3]}
//	POST   /v1/solve  {"graph": {"n":3,"edges":[[0,1,5],[1,2,7]]}, "dests": [2]}
//	POST   /v1/allpairs            (NDJSON row stream, one per destination)
//	POST   /v1/session             (dynamic-graph session bound to graph + dests)
//	POST   /v1/session/{id}/update (weight-delta batch; re-solved rows stream)
//	GET    /v1/session/{id}/stream (long-lived NDJSON re-solve stream)
//	DELETE /v1/session/{id}        (graceful close: drain, then closed line)
//	GET    /healthz
//	GET    /metrics   (Prometheus text format)
//
// SIGINT/SIGTERM trigger a graceful drain: new work is refused with 503,
// queued and in-flight solves complete, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ppamcp/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ppaserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (then drains)
// or the listener fails. When ready is non-nil the bound address is sent
// on it once the server is accepting — the hook the tests use to talk to
// an ephemeral-port instance.
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("ppaserved", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "solver workers (0 = GOMAXPROCS)")
	ringWorkers := fs.Int("ring-workers", 1, "simulator ring goroutines per session (1 = serial)")
	physicalSide := fs.Int("physical-side", 0, "block-mapped virtualization: simulate n-vertex graphs on an m x m physical array when m divides n (0 = direct)")
	queueDepth := fs.Int("queue", 64, "admission queue depth (full queue answers 429)")
	poolCap := fs.Int("pool", 64, "idle warm sessions kept across requests")
	maxN := fs.Int("max-n", 512, "largest accepted graph (vertices)")
	maxDests := fs.Int("max-dests", 1024, "largest accepted destination list")
	maxBatch := fs.Int("max-batch", 16, "requests coalesced per session checkout")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	solveDelay := fs.Duration("solve-delay", 0, "emulated per-solve device occupancy for fleet benches on small hosts (0 = off)")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	maxSessions := fs.Int("max-sessions", 16, "concurrent dynamic-graph sessions (full answers 429)")
	sessionIdle := fs.Duration("session-idle", 2*time.Minute, "idle timeout before a session is evicted")
	maxSessionDests := fs.Int("max-session-dests", 16, "largest destination set per session")
	sessionQueue := fs.Int("session-queue", 32, "pending update batches per session (full answers 429)")
	maxUpdateBatch := fs.Int("max-update-batch", 4096, "largest weight-delta batch per update POST")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc := serve.New(serve.Config{
		Workers:        *workers,
		RingWorkers:    *ringWorkers,
		PhysicalSide:   *physicalSide,
		QueueDepth:     *queueDepth,
		PoolCap:        *poolCap,
		MaxVertices:    *maxN,
		MaxDests:       *maxDests,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		SolveDelay:     *solveDelay,

		MaxSessions:        *maxSessions,
		SessionIdleTimeout: *sessionIdle,
		MaxSessionDests:    *maxSessionDests,
		SessionQueueDepth:  *sessionQueue,
		MaxUpdateBatch:     *maxUpdateBatch,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "ppaserved listening on %s (workers=%d queue=%d pool=%d max-n=%d)\n",
		ln.Addr(), nw, *queueDepth, *poolCap, *maxN)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "ppaserved: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Handlers first (they wait on workers), then the solver workers.
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http drain: %w", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("solver drain: %w", err)
	}
	fmt.Fprintln(out, "ppaserved: drained")
	return nil
}
