package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ppamcp/internal/serve"
)

// syncBuffer lets the daemon goroutine and the test share the output log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDaemonServesAndDrains boots the real daemon on an ephemeral port,
// solves over HTTP, then delivers the shutdown signal (via ctx, as
// signal.NotifyContext would) and expects a clean drain.
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2"}, out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\noutput:\n%s", err, out)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", resp.StatusCode)
	}

	body := `{"gen":{"gen":"connected","n":12,"seed":5},"dests":[0,7]}`
	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", resp.StatusCode, data)
	}
	var sr serve.SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("solve response: %v", err)
	}
	if sr.N != 12 || len(sr.Results) != 2 {
		t.Fatalf("solve response n=%d results=%d, want n=12 results=2", sr.N, len(sr.Results))
	}

	cancel() // what SIGINT/SIGTERM does in main
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain\noutput:\n%s", out)
	}
	log := out.String()
	for _, want := range []string{"ppaserved listening on", "ppaserved: draining", "ppaserved: drained"} {
		if !strings.Contains(log, want) {
			t.Errorf("output missing %q:\n%s", want, log)
		}
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

// TestDaemonVirtualizedSessions boots one direct daemon and one with
// -physical-side 4 and sends both the same request: the virtualized
// service must return identical answers with the k-times communication
// cost of block-mapped execution — proving the flag reaches the session
// pool and the solves really run on virt fabrics. A graph the physical
// side cannot tile still solves (direct fallback).
func TestDaemonVirtualizedSessions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boot := func(args ...string) (string, chan error) {
		t.Helper()
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() { done <- run(ctx, args, io.Discard, ready) }()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return "", nil
	}
	solve := func(base, body string) serve.SolveResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status = %d, body %s", resp.StatusCode, data)
		}
		var sr serve.SolveResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("solve response: %v", err)
		}
		return sr
	}

	directURL, directDone := boot("-addr", "127.0.0.1:0", "-workers", "1")
	virtURL, virtDone := boot("-addr", "127.0.0.1:0", "-workers", "1", "-physical-side", "4")

	const body = `{"gen":{"gen":"connected","n":12,"seed":5},"dests":[0,7]}`
	direct := solve(directURL, body)
	virt := solve(virtURL, body)
	if len(direct.Results) != 2 || len(virt.Results) != 2 {
		t.Fatalf("results: direct=%d virt=%d, want 2", len(direct.Results), len(virt.Results))
	}
	for i := range direct.Results {
		if !reflect.DeepEqual(direct.Results[i].Dist, virt.Results[i].Dist) {
			t.Errorf("dest %d: virtualized distances diverge", direct.Results[i].Dest)
		}
	}
	const k = 3 // n=12 on m=4
	if virt.Cost.BusCycles != k*direct.Cost.BusCycles || virt.Cost.BusCycles == 0 {
		t.Errorf("virtualized bus cycles = %d, want %d x %d (block-mapped sessions not engaged?)",
			virt.Cost.BusCycles, k, direct.Cost.BusCycles)
	}

	// 10 is not a multiple of 4: the virtualized service falls back to a
	// direct session for this graph rather than failing.
	fallback := solve(virtURL, `{"gen":{"gen":"connected","n":10,"seed":9},"dests":[3]}`)
	if len(fallback.Results) != 1 {
		t.Fatalf("fallback results = %d, want 1", len(fallback.Results))
	}

	cancel()
	for _, done := range []chan error{directDone, virtDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-queue", "not-a-number"}, &buf, nil)
	if err == nil {
		t.Fatal("run accepted a malformed flag")
	}
}

func TestDaemonListenFailure(t *testing.T) {
	// Grab a port with one daemon, then ask a second to bind the same one.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon never became ready")
	}

	err := run(context.Background(), []string{"-addr", addr}, io.Discard, nil)
	if err == nil {
		t.Fatalf("second daemon bound %s twice", addr)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon did not drain")
	}
}
