// Command mcprun solves a single-destination minimum cost path problem on
// a chosen backend (PPA, GCN, hypercube, mesh, Bellman-Ford, Dijkstra) and
// prints the distance table, an optional witness path, and the abstract
// machine cost.
//
// Examples:
//
//	mcprun -gen connected -n 16 -dest 3
//	mcprun -gen chain -n 10 -backend mesh -path 0
//	mcprun -graph net.g -dest 5 -backend hypercube -verify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ppamcp"
	"ppamcp/internal/bench"
	"ppamcp/internal/cli"
	"ppamcp/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcprun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcprun", flag.ContinueOnError)
	fs.SetOutput(out)
	var w cli.Workload
	w.Register(fs)
	var px cli.PPCExec
	px.Register(fs)
	dest := fs.Int("dest", 0, "destination vertex")
	backendName := fs.String("backend", "ppa", "ppa|ppc|gcn|hypercube|mesh|bellman-ford|dijkstra")
	bits := fs.Uint("bits", 0, "machine word width h (0 = auto)")
	workers := fs.Int("workers", 0, "simulator goroutines (PPA/mesh)")
	pathFrom := fs.Int("path", -1, "print the witness path from this vertex")
	verify := fs.Bool("verify", false, "independently certify optimality of the result")
	quiet := fs.Bool("quiet", false, "print only the summary line")
	tree := fs.Bool("tree", false, "draw the shortest-path tree instead of the distance table")
	allPairs := fs.Bool("allpairs", false, "compute the full next-hop routing table (PPA backend)")
	widest := fs.Bool("widest", false, "solve the widest-path (max-bottleneck) dual instead (PPA backend)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := w.Build()
	if err != nil {
		return err
	}
	if *allPairs {
		return runAllPairs(out, g, *bits, *workers)
	}
	if *widest {
		return runWidest(out, g, *dest, *bits, *workers, *pathFrom, *verify)
	}
	if *backendName == "ppc" {
		return runPPC(out, g, *dest, *bits, *pathFrom, *quiet, &px)
	}
	backend, err := ppamcp.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	res, err := ppamcp.Solve(g, *dest,
		ppamcp.WithBackend(backend), ppamcp.WithBits(*bits), ppamcp.WithWorkers(*workers))
	if err != nil {
		return err
	}

	if !*quiet {
		if *tree {
			fmt.Fprintln(out, viz.RenderTree(&res.Result))
		} else {
			fmt.Fprintln(out, viz.RenderDistances(&res.Result))
		}
	}
	fmt.Fprintf(out, "%s  n=%d edges=%d dest=%d iterations=%d",
		backend, g.N, g.Edges(), *dest, res.Iterations)
	if res.Bits > 0 {
		fmt.Fprintf(out, " h=%d", res.Bits)
	}
	fmt.Fprintln(out)
	if backend == ppamcp.Sequential || backend == ppamcp.SequentialDijkstra {
		fmt.Fprintf(out, "cost: %d edge relaxations\n", res.Relaxations)
	} else {
		fmt.Fprintf(out, "cost: %v\n", res.Metrics)
	}

	if *pathFrom >= 0 {
		path, ok := res.PathFrom(*pathFrom)
		if !ok {
			fmt.Fprintf(out, "path: vertex %d cannot reach %d\n", *pathFrom, *dest)
		} else {
			strs := make([]string, len(path))
			for i, v := range path {
				strs[i] = fmt.Sprint(v)
			}
			fmt.Fprintf(out, "path: %s (cost %d)\n", strings.Join(strs, " -> "), res.Dist[*pathFrom])
		}
	}
	if *verify {
		if err := ppamcp.Verify(g, res); err != nil {
			return fmt.Errorf("verification FAILED: %v", err)
		}
		fmt.Fprintln(out, "verification: OK (witness paths + no relaxable edge)")
	}
	return nil
}

// runPPC solves by executing the paper's PPC listing — compiled to
// bytecode by default, on the tree-walking oracle with -reference. The
// machine cost is identical either way (enforced by the differential
// tests); the flag exists to demonstrate exactly that.
func runPPC(out io.Writer, g *ppamcp.Graph, dest int, bits uint, pathFrom int, quiet bool, px *cli.PPCExec) error {
	if dest < 0 || dest >= g.N {
		return fmt.Errorf("destination %d out of range [0,%d)", dest, g.N)
	}
	h := bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	res, metrics, err := bench.RunPaperPPC(g, dest, h, px.Options(out)...)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintln(out, viz.RenderDistances(res))
	}
	exec := "bytecode VM"
	if px.Reference {
		exec = "reference interpreter"
	}
	fmt.Fprintf(out, "ppc (%s)  n=%d edges=%d dest=%d h=%d\n", exec, g.N, g.Edges(), dest, h)
	fmt.Fprintf(out, "cost: %v\n", metrics)
	if pathFrom >= 0 {
		path, ok := res.PathFrom(pathFrom)
		if !ok {
			fmt.Fprintf(out, "path: vertex %d cannot reach %d\n", pathFrom, dest)
		} else {
			strs := make([]string, len(path))
			for i, v := range path {
				strs[i] = fmt.Sprint(v)
			}
			fmt.Fprintf(out, "path: %s (cost %d)\n", strings.Join(strs, " -> "), res.Dist[pathFrom])
		}
	}
	return nil
}

// runWidest solves and prints the widest-path dual.
func runWidest(out io.Writer, g *ppamcp.Graph, dest int, bits uint, workers, pathFrom int, verify bool) error {
	r, metrics, err := ppamcp.SolveWidest(g, dest, ppamcp.WithBits(bits), ppamcp.WithWorkers(workers))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "widest paths to %d (capacity = best achievable bottleneck):\n", dest)
	fmt.Fprintf(out, "%8s %10s %6s\n", "vertex", "capacity", "next")
	for v := range r.Cap {
		switch {
		case v == dest:
			fmt.Fprintf(out, "%8d %10s %6s\n", v, "unbounded", "-")
		case r.Cap[v] == 0:
			fmt.Fprintf(out, "%8d %10s %6s\n", v, "none", "-")
		default:
			fmt.Fprintf(out, "%8d %10d %6d\n", v, r.Cap[v], r.Next[v])
		}
	}
	fmt.Fprintf(out, "iterations=%d cost: %v\n", r.Iterations, metrics)
	if pathFrom >= 0 && pathFrom < len(r.Cap) && r.Cap[pathFrom] != 0 && pathFrom != dest {
		path := []int{pathFrom}
		for v := pathFrom; v != dest; v = r.Next[v] {
			path = append(path, r.Next[v])
		}
		strs := make([]string, len(path))
		for i, v := range path {
			strs[i] = fmt.Sprint(v)
		}
		fmt.Fprintf(out, "path: %s (bottleneck %d)\n", strings.Join(strs, " -> "), r.Cap[pathFrom])
	}
	if verify {
		if err := ppamcp.VerifyWidest(g, r); err != nil {
			return fmt.Errorf("verification FAILED: %v", err)
		}
		fmt.Fprintln(out, "verification: OK (witness bottlenecks + no improving edge)")
	}
	return nil
}

// runAllPairs prints the full next-hop routing table (row = source,
// column = destination) computed with one PPA solve per destination.
func runAllPairs(out io.Writer, g *ppamcp.Graph, bits uint, workers int) error {
	ap, err := ppamcp.SolveAllPairs(g, ppamcp.WithBits(bits), ppamcp.WithWorkers(workers))
	if err != nil {
		return err
	}
	n := ap.N
	fmt.Fprintf(out, "next-hop table for %d vertices ('.' = self, '-' = unreachable):\n     ", n)
	for dst := 0; dst < n; dst++ {
		fmt.Fprintf(out, "%4d", dst)
	}
	fmt.Fprintln(out)
	for src := 0; src < n; src++ {
		fmt.Fprintf(out, "  %2d ", src)
		for dst := 0; dst < n; dst++ {
			switch {
			case src == dst:
				fmt.Fprintf(out, "%4s", ".")
			case ap.Next[src*n+dst] < 0:
				fmt.Fprintf(out, "%4s", "-")
			default:
				fmt.Fprintf(out, "%4d", ap.Next[src*n+dst])
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "total cost over %d solves: %v (%d DP rounds)\n",
		n, ap.Metrics, ap.Iterations)
	return nil
}
