package main

import (
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestRunChainAllBackends(t *testing.T) {
	for _, backend := range []string{"ppa", "gcn", "hypercube", "mesh", "bellman-ford", "dijkstra"} {
		out := runOK(t, "-gen", "chain", "-n", "5", "-dest", "4", "-backend", backend, "-path", "0", "-verify")
		if !strings.Contains(out, "path: 0 -> 1 -> 2 -> 3 -> 4") {
			t.Errorf("%s: missing path line:\n%s", backend, out)
		}
		if !strings.Contains(out, "verification: OK") {
			t.Errorf("%s: missing verification:\n%s", backend, out)
		}
	}
}

func TestRunQuietAndMetrics(t *testing.T) {
	out := runOK(t, "-gen", "star", "-n", "6", "-dest", "0", "-quiet")
	if strings.Contains(out, "vertex") {
		t.Errorf("quiet mode printed the table:\n%s", out)
	}
	if !strings.Contains(out, "cost:") {
		t.Errorf("missing cost line:\n%s", out)
	}
}

func TestRunUnreachablePath(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-dest", "0", "-path", "3", "-quiet")
	if !strings.Contains(out, "cannot reach") {
		t.Errorf("missing unreachable notice:\n%s", out)
	}
}

func TestRunSequentialCostLine(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-dest", "3", "-backend", "bf", "-quiet")
	if !strings.Contains(out, "relaxations") {
		t.Errorf("sequential cost line missing:\n%s", out)
	}
}

func TestRunTree(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-dest", "3", "-maxw", "1", "-tree")
	if !strings.Contains(out, "3 (destination)") || !strings.Contains(out, "(cost 3)") {
		t.Errorf("tree output:\n%s", out)
	}
	rev := runOK(t, "-gen", "chain", "-n", "4", "-dest", "0", "-tree")
	if !strings.Contains(rev, "unreachable: [1 2 3]") {
		t.Errorf("unreachable list:\n%s", rev)
	}
}

func TestRunWidest(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-dest", "3", "-widest", "-path", "0", "-verify")
	for _, want := range []string{"widest paths to 3", "unbounded", "bottleneck", "verification: OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Unreachable marker.
	rev := runOK(t, "-gen", "chain", "-n", "4", "-dest", "0", "-widest")
	if !strings.Contains(rev, "none") {
		t.Errorf("missing unreachable marker:\n%s", rev)
	}
}

func TestRunAllPairs(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-allpairs")
	if !strings.Contains(out, "next-hop table") || !strings.Contains(out, "total cost over 4 solves") {
		t.Errorf("allpairs output:\n%s", out)
	}
	// On a chain, 3 -> 0 is unreachable and shows as '-'.
	if !strings.Contains(out, "-") {
		t.Errorf("unreachable marker missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-backend", "quantum"},
		{"-gen", "nosuch"},
		{"-gen", "chain", "-n", "4", "-dest", "9"},
		{"-graph", "/nonexistent"},
		{"-badflag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestRunBadGeneratorParams: malformed generator parameters used to
// escape as raw panics out of the generators; they must surface as clean
// errors so main can print one line and exit non-zero.
func TestRunBadGeneratorParams(t *testing.T) {
	cases := [][]string{
		{"-gen", "random", "-n", "0"},
		{"-gen", "connected", "-n", "-3"},
		{"-gen", "random", "-n", "8", "-density", "5"},
		{"-gen", "chain", "-n", "8", "-maxw", "0"},
		{"-gen", "diameter", "-n", "4", "-p", "9"},
		{"-gen", "grid", "-rows", "-1", "-cols", "2"},
		{"-gen", "complete", "-n", "100000"},
	}
	for _, args := range cases {
		args := args
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("run(%v) panicked: %v", args, r)
				}
			}()
			var sb strings.Builder
			if err := run(args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want parameter error", args)
			}
		}()
	}
}
