// Command ppcrun runs a Polymorphic Parallel C program on the PPA
// simulator. Without -src it runs the paper's minimum_cost_path() listing
// on the selected workload, binding W and d from the graph, and prints the
// resulting SOW/PTN rows plus the machine cost.
//
// Examples:
//
//	ppcrun -gen connected -n 8 -dest 2
//	ppcrun -show-source
//	ppcrun -src prog.ppc -entry main -n 4
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"ppamcp/internal/cli"
	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
	"ppamcp/internal/ppclang"
	"ppamcp/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppcrun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppcrun", flag.ContinueOnError)
	fs.SetOutput(out)
	var w cli.Workload
	w.Register(fs)
	var px cli.PPCExec
	px.Register(fs)
	src := fs.String("src", "", "PPC source file (default: the paper's minimum_cost_path listing)")
	entry := fs.String("entry", "", "entry function (default: minimum_cost_path for the paper program, else main)")
	dest := fs.Int("dest", 0, "destination vertex bound to the program's 'd' global")
	bits := fs.Uint("bits", 0, "machine word width h (0 = auto from the graph)")
	side := fs.Int("side", 0, "machine side for -src programs that take no graph (0 = use -n)")
	showSource := fs.Bool("show-source", false, "print the paper's PPC source and exit")
	fig1 := fs.Bool("fig1", false, "render the paper's Figure 1: the switch configurations the MCP algorithm programs")
	program := fs.String("program", "", "run a shipped demo program: sort|dt|widest (random input from -n/-seed)")
	disasm := fs.Bool("disasm", false, "print the compiled bytecode of the selected program and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showSource {
		fmt.Fprint(out, ppclang.PaperMCPSource)
		return nil
	}
	if *fig1 {
		renderFig1(out, w.N, dest)
		return nil
	}
	if *disasm {
		return runDisasm(out, *src, *program)
	}
	if *program != "" {
		return runShipped(out, *program, w.N, w.Seed, *bits, &px)
	}

	if *src != "" {
		return runCustom(out, *src, *entry, *side, &w, *bits, &px)
	}
	return runPaper(out, &w, *dest, *bits, &px)
}

// runDisasm prints the flat bytecode the compiler produced for the
// selected source: a -src file, a shipped -program, or (default) the
// paper's listing.
func runDisasm(out io.Writer, srcPath, program string) error {
	src := ppclang.PaperMCPSource
	switch {
	case srcPath != "":
		b, err := os.ReadFile(srcPath)
		if err != nil {
			return err
		}
		src = string(b)
	case program == "sort":
		src = ppclang.SortRowsSource
	case program == "dt":
		src = ppclang.DistanceTransformSource
	case program == "widest":
		src = ppclang.WidestPathSource
	case program != "":
		return fmt.Errorf("unknown -program %q (want sort, dt or widest)", program)
	}
	prog, err := ppclang.Compile(src)
	if err != nil {
		return err
	}
	text, err := ppclang.Disassemble(prog)
	if err != nil {
		return err
	}
	fmt.Fprint(out, text)
	return nil
}

// runShipped runs one of the shipped demo programs on generated input.
func runShipped(out io.Writer, name string, n int, seed int64, bits uint, px *cli.PPCExec) error {
	if n < 1 {
		n = 6
	}
	h := bits
	if h == 0 {
		h = 10
	}
	rng := rand.New(rand.NewSource(seed))
	m := ppa.New(n, h)
	switch name {
	case "sort":
		prog, err := ppclang.Compile(ppclang.SortRowsSource)
		if err != nil {
			return err
		}
		in, err := ppclang.NewExecutor(prog, par.New(m), px.Options(out)...)
		if err != nil {
			return err
		}
		data := make([]ppa.Word, n*n)
		for i := range data {
			data[i] = ppa.Word(rng.Int63n(100))
		}
		if err := in.SetParallelInt("V", data); err != nil {
			return err
		}
		fmt.Fprintf(out, "input:\n%s\n", viz.RenderWordGrid(n, data, m.Inf()))
		if _, err := in.Call("sort_rows"); err != nil {
			return err
		}
		sorted, err := in.GetParallelInt("V")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "rows sorted:\n%s\n", viz.RenderWordGrid(n, sorted, m.Inf()))
	case "dt":
		prog, err := ppclang.Compile(ppclang.DistanceTransformSource)
		if err != nil {
			return err
		}
		in, err := ppclang.NewExecutor(prog, par.New(m), px.Options(out)...)
		if err != nil {
			return err
		}
		fg := make([]bool, n*n)
		fg[rng.Intn(n*n)] = true
		for i := range fg {
			if rng.Float64() < 0.1 {
				fg[i] = true
			}
		}
		if err := in.SetParallelLogical("FG", fg); err != nil {
			return err
		}
		if _, err := in.Call("distance_transform"); err != nil {
			return err
		}
		dist, err := in.GetParallelInt("DIST")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "city-block distance field (inf = no foreground):\n%s\n",
			viz.RenderWordGrid(n, dist, m.Inf()))
	case "widest":
		return runShippedWidest(out, n, seed, bits, px)
	default:
		return fmt.Errorf("unknown -program %q (want sort, dt or widest)", name)
	}
	fmt.Fprintf(out, "machine cost: %v\n", m.Metrics())
	return nil
}

// runShippedWidest runs the widest-path PPC program on a random
// connected graph: W carries edge capacities with inf on the diagonal
// (a vertex's own bottleneck is unbounded) and 0 for missing edges.
func runShippedWidest(out io.Writer, n int, seed int64, bits uint, px *cli.PPCExec) error {
	g := graph.GenRandomConnected(n, 0.4, 9, seed)
	h := bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	m := ppa.New(n, h)
	prog, err := ppclang.Compile(ppclang.WidestPathSource)
	if err != nil {
		return err
	}
	in, err := ppclang.NewExecutor(prog, par.New(m), px.Options(out)...)
	if err != nil {
		return err
	}
	inf := m.Inf()
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = inf
			case wt == graph.NoEdge:
				w[i*n+j] = 0
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	if err := in.SetParallelInt("W", w); err != nil {
		return err
	}
	if err := in.SetInt("d", 0); err != nil {
		return err
	}
	if _, err := in.Call("widest_path"); err != nil {
		return err
	}
	capGrid, err := in.GetParallelInt("CAP")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "widest-path capacities to vertex 0 (row 0 holds the bottlenecks):\n%s\n",
		viz.RenderWordGrid(n, capGrid, inf))
	fmt.Fprintf(out, "machine cost: %v\n", m.Metrics())
	return nil
}

// renderFig1 draws the three bus/switch configurations the MCP algorithm
// programs on an n x n array for destination d — the functional content
// of the paper's Figure 1.
func renderFig1(out io.Writer, nFlag int, destFlag *int) {
	n := nFlag
	if n < 2 {
		n = 4
	}
	d := 0
	if destFlag != nil && *destFlag >= 0 && *destFlag < n {
		d = *destFlag
	}
	size := n * n
	fmt.Fprintf(out, "The three switch configurations of one MCP round (n=%d, d=%d):\n\n", n, d)

	rowD := make([]bool, size)
	for c := 0; c < n; c++ {
		rowD[d*n+c] = true
	}
	fmt.Fprintf(out, "1) statement 10 — broadcast SOW from row %d down every column:\n%s\n",
		d, viz.RenderSwitches(n, rowD, ppa.South))

	heads := make([]bool, size)
	for r := 0; r < n; r++ {
		heads[r*n+n-1] = true
	}
	fmt.Fprintf(out, "2) statements 11-12 — min()/selected_min() clusters: whole rows headed at column %d:\n%s\n",
		n-1, viz.RenderSwitches(n, heads, ppa.West))

	diag := make([]bool, size)
	for i := 0; i < n; i++ {
		diag[i*n+i] = true
	}
	fmt.Fprintf(out, "3) statements 16-18 — fold the row minima back through the diagonal:\n%s",
		viz.RenderSwitches(n, diag, ppa.South))
}

// runPaper executes the paper's program on a workload graph.
func runPaper(out io.Writer, w *cli.Workload, dest int, bits uint, px *cli.PPCExec) error {
	g, err := w.Build()
	if err != nil {
		return err
	}
	if dest < 0 || dest >= g.N {
		return fmt.Errorf("destination %d out of range [0,%d)", dest, g.N)
	}
	h := bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	prog, err := ppclang.Compile(ppclang.PaperMCPSource)
	if err != nil {
		return err
	}
	m := ppa.New(g.N, h)
	arr := par.New(m)
	in, err := ppclang.NewExecutor(prog, arr, px.Options(out)...)
	if err != nil {
		return err
	}
	n := g.N
	inf := m.Inf()
	wm := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				wm[i*n+j] = 0
			case wt == graph.NoEdge:
				wm[i*n+j] = inf
			default:
				wm[i*n+j] = ppa.Word(wt)
			}
		}
	}
	if err := in.SetParallelInt("W", wm); err != nil {
		return err
	}
	if err := in.SetInt("d", int64(dest)); err != nil {
		return err
	}
	if _, err := in.Call("minimum_cost_path"); err != nil {
		return err
	}
	sow, err := in.GetParallelInt("SOW")
	if err != nil {
		return err
	}
	ptn, err := in.GetParallelInt("PTN")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "paper program on %d-vertex graph, dest=%d, h=%d\n\n", n, dest, h)
	fmt.Fprintf(out, "SOW (row %d holds the path costs):\n%s\n", dest, viz.RenderWordGrid(n, sow, inf))
	fmt.Fprintf(out, "PTN (row %d holds the next-vertex pointers):\n%s\n", dest, viz.RenderWordGrid(n, ptn, inf))
	fmt.Fprintf(out, "machine cost: %v\n", m.Metrics())
	return nil
}

// runCustom compiles and runs an arbitrary PPC source file.
func runCustom(out io.Writer, path, entry string, side int, w *cli.Workload, bits uint, px *cli.PPCExec) error {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	prog, err := ppclang.Compile(string(srcBytes))
	if err != nil {
		return err
	}
	if err := ppclang.Check(prog); err != nil {
		return fmt.Errorf("static check failed:\n%w", err)
	}
	n := side
	if n <= 0 {
		n = w.N
	}
	h := bits
	if h == 0 {
		h = 16
	}
	m := ppa.New(n, h)
	in, err := ppclang.NewExecutor(prog, par.New(m), px.Options(out)...)
	if err != nil {
		return err
	}
	if entry == "" {
		entry = "main"
	}
	if _, err := in.Call(entry); err != nil {
		return err
	}
	fmt.Fprintf(out, "machine cost: %v\n", m.Metrics())
	return nil
}
