package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestShowSource(t *testing.T) {
	out := runOK(t, "-show-source")
	if !strings.Contains(out, "minimum_cost_path") || !strings.Contains(out, "selected_min") {
		t.Errorf("source missing:\n%s", out)
	}
}

func TestFig1Rendering(t *testing.T) {
	out := runOK(t, "-fig1", "-n", "4", "-dest", "1")
	for _, want := range []string{"statement 10", "min()/selected_min()", "diagonal", "[O]", "South", "West"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Tiny -n falls back to a drawable default.
	if out := runOK(t, "-fig1", "-n", "1"); !strings.Contains(out, "n=4") {
		t.Errorf("fallback side missing:\n%s", out)
	}
}

func TestRunPaperProgram(t *testing.T) {
	out := runOK(t, "-gen", "chain", "-n", "4", "-dest", "3", "-maxw", "2")
	for _, want := range []string{"SOW", "PTN", "machine cost", "paper program on 4-vertex graph"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Chain 0->1->2->3 weight 2: SOW row 3 = 6 4 2 0.
	if !strings.Contains(out, "6   4   2   0") {
		t.Errorf("SOW row missing:\n%s", out)
	}
}

func TestRunCustomSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hello.ppc")
	src := `
parallel int V;
void main() {
	V = ROW;
	print(max(V, SOUTH, ROW == 0));
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-src", path, "-side", "3")
	if !strings.Contains(out, "2 2 2") {
		t.Errorf("max output missing:\n%s", out)
	}
	if !strings.Contains(out, "machine cost") {
		t.Errorf("cost line missing:\n%s", out)
	}
}

func TestRunCustomEntry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry.ppc")
	if err := os.WriteFile(path, []byte("void go_here() { print(7); }"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-src", path, "-entry", "go_here", "-n", "2")
	if !strings.Contains(out, "7") {
		t.Errorf("entry output missing:\n%s", out)
	}
}

func TestRunShippedPrograms(t *testing.T) {
	sorted := runOK(t, "-program", "sort", "-n", "4", "-seed", "3")
	if !strings.Contains(sorted, "rows sorted") || !strings.Contains(sorted, "machine cost") {
		t.Errorf("sort output:\n%s", sorted)
	}
	dtOut := runOK(t, "-program", "dt", "-n", "5")
	if !strings.Contains(dtOut, "distance field") {
		t.Errorf("dt output:\n%s", dtOut)
	}
	var sb strings.Builder
	if err := run([]string{"-program", "nosuch"}, &sb); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	badSyntax := filepath.Join(dir, "bad.ppc")
	os.WriteFile(badSyntax, []byte("int x"), 0o644)
	cases := [][]string{
		{"-gen", "nosuch"},
		{"-gen", "chain", "-n", "4", "-dest", "9"},
		{"-src", "/nonexistent.ppc"},
		{"-src", badSyntax},
		{"-badflag"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
	// Custom source without a main.
	noMain := filepath.Join(dir, "nomain.ppc")
	os.WriteFile(noMain, []byte("void other() { }"), 0o644)
	var sb strings.Builder
	if err := run([]string{"-src", noMain, "-n", "2"}, &sb); err == nil {
		t.Error("missing main accepted")
	}
}

// TestRunBadGeneratorParams mirrors the mcprun test: bad generator
// parameters must come back as errors, not panics.
func TestRunBadGeneratorParams(t *testing.T) {
	cases := [][]string{
		{"-gen", "random", "-n", "0"},
		{"-gen", "random", "-n", "8", "-density", "-1"},
		{"-gen", "chain", "-n", "8", "-maxw", "0"},
		{"-gen", "diameter", "-n", "4", "-p", "9"},
	}
	for _, args := range cases {
		args := args
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("run(%v) panicked: %v", args, r)
				}
			}()
			var sb strings.Builder
			if err := run(args, &sb); err == nil {
				t.Errorf("run(%v) succeeded, want parameter error", args)
			}
		}()
	}
}
