package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ppamcp/internal/serve"
)

// TestSelfServeSmoke runs the full closed loop in-process: spin up a
// server, hammer it with a handful of clients, and require every
// response verified against Bellman-Ford.
func TestSelfServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-selfserve", "-gen", "connected", "-n", "16", "-seed", "11",
		"-c", "8", "-requests", "3", "-dests", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\noutput:\n%s", err, buf.String())
	}
	if sum.Requests != 24 || sum.OK != 24 || sum.Verified != 24 {
		t.Errorf("requests/ok/verified = %d/%d/%d, want 24/24/24",
			sum.Requests, sum.OK, sum.Verified)
	}
	if sum.Errors != 0 {
		t.Errorf("errors = %d, want 0", sum.Errors)
	}
	if sum.Solves != 48 {
		t.Errorf("dest solves = %d, want 48", sum.Solves)
	}
	if sum.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", sum.Throughput)
	}
	if sum.N != 16 {
		t.Errorf("n = %d, want 16", sum.N)
	}
}

// TestSelfServeInline sends the graph inline rather than as a spec; the
// human-readable report should show full verification.
func TestSelfServeInline(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-selfserve", "-gen", "grid", "-rows", "3", "-cols", "4", "-seed", "2",
		"-c", "4", "-requests", "2", "-inline",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "verified 8/8 responses") {
		t.Errorf("output missing full verification:\n%s", out)
	}
	if !strings.Contains(out, "8 ok, ") {
		t.Errorf("output missing ok count:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                    // neither -url nor -selfserve
		{"-url", "http://x", "-selfserve"},    // both
		{"-selfserve", "-c", "0"},             // bad client count
		{"-selfserve", "-requests", "-1"},     // bad request count
		{"-selfserve", "-n", "0"},             // bad workload (via Build)
		{"-url", "http://x", "-density", "7"}, // bad workload (via Build)
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestTargetsRoundRobin spreads clients over two real in-process
// servers via -targets and requires both to see traffic.
func TestTargetsRoundRobin(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		svc := serve.New(serve.Config{Workers: 1, MaxVertices: 16})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		addrs = append(addrs, "http://"+ln.Addr().String())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			svc.Shutdown(ctx)
		}()
	}

	var buf bytes.Buffer
	err := run([]string{
		"-targets", strings.Join(addrs, ","),
		"-gen", "connected", "-n", "12", "-seed", "3",
		"-c", "4", "-requests", "3", "-dests", "1", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\noutput:\n%s", err, buf.String())
	}
	if sum.OK != 12 || sum.Verified != 12 {
		t.Errorf("ok/verified = %d/%d, want 12/12", sum.OK, sum.Verified)
	}
	if sum.Target != strings.Join(addrs, ",") {
		t.Errorf("target = %q, want both addresses", sum.Target)
	}
}

// TestMultiGraphZipf rotates over several graphs with a Zipf skew
// against a single self-served backend: every response must still
// verify against the right graph's reference.
func TestMultiGraphZipf(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-selfserve", "-gen", "connected", "-n", "12", "-seed", "5",
		"-graphs", "4", "-zipf", "1.4",
		"-c", "4", "-requests", "4", "-dests", "1", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\noutput:\n%s", err, buf.String())
	}
	if sum.OK != 16 || sum.Verified != 16 {
		t.Errorf("ok/verified = %d/%d, want 16/16", sum.OK, sum.Verified)
	}
	if sum.Graphs != 4 || sum.Zipf != 1.4 {
		t.Errorf("graphs/zipf = %d/%v, want 4/1.4", sum.Graphs, sum.Zipf)
	}
}

// TestFleetSweep runs the full in-process fleet benchmark at sizes 1
// and 2: both rows per size must fully verify, and the Zipf row must
// see front-door cache traffic.
func TestFleetSweep(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-fleet", "1,2", "-gen", "connected", "-n", "12", "-seed", "7",
		"-graphs", "6", "-c", "4", "-requests", "6", "-dests", "1", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var rep FleetReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\noutput:\n%s", err, buf.String())
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 sizes x 2 mixes)", len(rep.Rows))
	}
	if rep.HostCPUs < 1 {
		t.Errorf("host_cpus = %d", rep.HostCPUs)
	}
	for _, row := range rep.Rows {
		if row.OK+row.Unserved != 24 || row.Verified != row.OK {
			t.Errorf("fleet=%d mix=%s: ok=%d unserved=%d verified=%d, want all served+verified",
				row.Backends, row.Mix, row.OK, row.Unserved, row.Verified)
		}
		if row.Mix == "zipf" && row.CacheHits+row.CacheCollapsed == 0 {
			t.Errorf("fleet=%d zipf row saw no front-door cache traffic", row.Backends)
		}
	}
}
