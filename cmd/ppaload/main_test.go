package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSelfServeSmoke runs the full closed loop in-process: spin up a
// server, hammer it with a handful of clients, and require every
// response verified against Bellman-Ford.
func TestSelfServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-selfserve", "-gen", "connected", "-n", "16", "-seed", "11",
		"-c", "8", "-requests", "3", "-dests", "2", "-json",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\noutput:\n%s", err, buf.String())
	}
	if sum.Requests != 24 || sum.OK != 24 || sum.Verified != 24 {
		t.Errorf("requests/ok/verified = %d/%d/%d, want 24/24/24",
			sum.Requests, sum.OK, sum.Verified)
	}
	if sum.Errors != 0 {
		t.Errorf("errors = %d, want 0", sum.Errors)
	}
	if sum.Solves != 48 {
		t.Errorf("dest solves = %d, want 48", sum.Solves)
	}
	if sum.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", sum.Throughput)
	}
	if sum.N != 16 {
		t.Errorf("n = %d, want 16", sum.N)
	}
}

// TestSelfServeInline sends the graph inline rather than as a spec; the
// human-readable report should show full verification.
func TestSelfServeInline(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-selfserve", "-gen", "grid", "-rows", "3", "-cols", "4", "-seed", "2",
		"-c", "4", "-requests", "2", "-inline",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "verified 8/8 responses") {
		t.Errorf("output missing full verification:\n%s", out)
	}
	if !strings.Contains(out, "8 ok, ") {
		t.Errorf("output missing ok count:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                    // neither -url nor -selfserve
		{"-url", "http://x", "-selfserve"},    // both
		{"-selfserve", "-c", "0"},             // bad client count
		{"-selfserve", "-requests", "-1"},     // bad request count
		{"-selfserve", "-n", "0"},             // bad workload (via Build)
		{"-url", "http://x", "-density", "7"}, // bad workload (via Build)
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
