package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"ppamcp/internal/graph"
	"ppamcp/internal/serve"
)

// This file is the -updates closed loop: each client owns one dynamic
// graph session (POST /v1/session + the NDJSON re-solve stream), feeds it
// a stream of weight-delta batches, verifies every re-solved generation
// against Bellman-Ford on a client-side mirror, and measures the update
// staleness — the time from posting a delta to holding the re-solved rows
// it produced. A second phase issues the same number of mutations as
// plain /v1/solve requests with the full graph inline (every request a
// reload-and-cold-solve), giving the updates/sec vs cold solves/sec
// comparison the incremental path exists for.

// updSession is one client's session state: the live stream decoder plus
// the mirror graph the verifier tracks.
type updSession struct {
	id     string
	client *http.Client
	target string
	body   *bufio.Scanner
	close  func()
	mirror *graph.Graph
	dests  []int
}

// updCreate opens one session. With allDests the request carries
// "dests": "all" and the tracked destination set is taken from the
// created body (0..n-1), so every generation is a full table.
func updCreate(c *http.Client, target string, g *graph.Graph, dests []int, allDests bool) (*updSession, error) {
	gj, err := json.Marshal(g)
	if err != nil {
		return nil, err
	}
	body, _ := json.Marshal(serve.SessionCreateRequest{Graph: gj, Dests: dests, AllDests: allDests})
	resp, err := c.Post(target+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("create session: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var sc serve.SessionCreated
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		return nil, err
	}
	if allDests {
		dests = sc.Dests
	}

	sreq, err := http.NewRequest(http.MethodGet, target+"/v1/session/"+sc.SessionID+"/stream", nil)
	if err != nil {
		return nil, err
	}
	sresp, err := c.Do(sreq)
	if err != nil {
		return nil, err
	}
	if sresp.StatusCode != http.StatusOK {
		sresp.Body.Close()
		return nil, fmt.Errorf("open stream: status %d", sresp.StatusCode)
	}
	sc2 := bufio.NewScanner(sresp.Body)
	sc2.Buffer(make([]byte, 0, 1<<20), 1<<20)
	us := &updSession{
		id: sc.SessionID, client: c, target: target,
		body: sc2, close: func() { sresp.Body.Close() },
		mirror: g.Clone(), dests: dests,
	}
	// First line is the header.
	if _, err := us.nextLine(); err != nil {
		us.close()
		return nil, fmt.Errorf("stream header: %w", err)
	}
	return us, nil
}

// nextLine reads one raw NDJSON line from the stream.
func (us *updSession) nextLine() ([]byte, error) {
	for us.body.Scan() {
		line := bytes.TrimSpace(us.body.Bytes())
		if len(line) > 0 {
			return append([]byte(nil), line...), nil
		}
	}
	if err := us.body.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// readGeneration collects one re-solve generation (rows + trailer) for
// the expected seq and verifies every row against the mirror.
func (us *updSession) readGeneration(seq uint64, verify bool) (*serve.SessionTrailer, error) {
	rows := make([]serve.DestResult, 0, len(us.dests))
	for {
		line, err := us.nextLine()
		if err != nil {
			return nil, fmt.Errorf("seq %d: stream ended early: %w", seq, err)
		}
		var probe struct {
			Error *string `json:"error"`
			Dest  *int    `json:"dest"`
			Rows  *int    `json:"rows"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, err
		}
		switch {
		case probe.Error != nil:
			return nil, fmt.Errorf("seq %d: stream error: %s", seq, *probe.Error)
		case probe.Dest != nil:
			var row serve.SessionRow
			if err := json.Unmarshal(line, &row); err != nil {
				return nil, err
			}
			if row.Seq != seq {
				return nil, fmt.Errorf("row seq %d, want %d", row.Seq, seq)
			}
			rows = append(rows, row.DestResult)
		default:
			var tr serve.SessionTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				return nil, err
			}
			if tr.Seq != seq || tr.Rows != len(us.dests) {
				return nil, fmt.Errorf("trailer %+v, want seq %d with %d rows", tr, seq, len(us.dests))
			}
			if verify {
				ref := func(dest int) (*graph.Result, error) { return graph.BellmanFord(us.mirror, dest) }
				if err := verifyResponse(us.mirror, &serve.SolveResponse{Results: rows}, us.dests, ref); err != nil {
					return nil, err
				}
			}
			return &tr, nil
		}
	}
}

// postUpdates sends one delta batch, retrying 429 with backoff, and
// applies it to the mirror on acceptance.
func (us *updSession) postUpdates(ups []serve.WireUpdate, shed *int) (*serve.UpdateAccepted, error) {
	body, _ := json.Marshal(serve.SessionUpdateRequest{Updates: ups})
	for attempt := 0; ; attempt++ {
		resp, err := us.client.Post(us.target+"/v1/session/"+us.id+"/update", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 5 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			*shed++
			time.Sleep(50 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			return nil, fmt.Errorf("update: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		var ua serve.UpdateAccepted
		if err := json.NewDecoder(resp.Body).Decode(&ua); err != nil {
			return nil, err
		}
		gus := make([]graph.WeightUpdate, len(ups))
		for i, u := range ups {
			w := u.W
			if w == -1 {
				w = graph.NoEdge
			}
			gus[i] = graph.WeightUpdate{U: u.U, V: u.V, W: w}
		}
		if err := us.mirror.Apply(gus); err != nil {
			return nil, err
		}
		return &ua, nil
	}
}

func (us *updSession) delete() {
	req, err := http.NewRequest(http.MethodDelete, us.target+"/v1/session/"+us.id, nil)
	if err == nil {
		if resp, err := us.client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	us.close()
}

// mutateBatch builds the i-th delta batch for a mirror: weight rewrites
// of existing edges, rotating over the edge list so the whole graph
// churns. w' = (w mod 9) + 1 never equals w for the generator's weight
// range, so every edit is effective.
func mutateBatch(mirror *graph.Graph, edges [][2]int, i, size int) []serve.WireUpdate {
	ups := make([]serve.WireUpdate, 0, size)
	for e := 0; e < size; e++ {
		uv := edges[(i*size+e)*7%len(edges)]
		w := mirror.At(uv[0], uv[1])
		if w == graph.NoEdge {
			w = 9
		}
		ups = append(ups, serve.WireUpdate{U: uv[0], V: uv[1], W: (w % 9) + 1})
	}
	return ups
}

// runUpdates drives the -updates closed loop and fills the Summary's
// dynamic-graph fields. Each of s.clients clients owns one session on its
// own graph; batches update batches flow through each, then the same
// number of mutations are replayed as cold inline /v1/solve requests for
// the baseline. With s.allPairs the sessions track every destination
// ("dests": "all"), each generation is a full Bellman-Ford-verified
// table, StalenessMS becomes table staleness, and the cold baseline is a
// from-scratch /v1/allpairs table per mutation.
func runUpdates(s loadSpec, batches, batchSize int) (Summary, error) {
	n := s.graphs[0].N
	if s.allPairs {
		s.destsPer = n
	}
	sum := Summary{
		Target: strings.Join(s.targets, ","), Gen: s.w, N: n,
		Clients: s.clients, PerClient: batches, DestsPerRequest: s.destsPer,
		Graphs: len(s.graphs), Mix: "updates",
		UpdatesMode: true, UpdateBatch: batchSize, AllPairs: s.allPairs,
	}
	var mu sync.Mutex
	var staleness, coldLat []float64
	httpClient := &http.Client{Timeout: 5 * time.Minute}

	dests := make([]int, s.destsPer)
	for i := range dests {
		dests[i] = (i * n) / s.destsPer
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, s.clients)
	mirrors := make([]*graph.Graph, s.clients)
	for c := 0; c < s.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := s.graphs[c%len(s.graphs)]
			us, err := updCreate(httpClient, s.targets[c%len(s.targets)], g, dests, s.allPairs)
			if err != nil {
				errCh <- err
				return
			}
			defer us.delete()
			if _, err := us.readGeneration(0, s.verify); err != nil {
				errCh <- err
				return
			}
			var edges [][2]int
			for i := 0; i < g.N; i++ {
				for j := 0; j < g.N; j++ {
					if i != j && g.HasEdge(i, j) {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
			if len(edges) == 0 {
				errCh <- fmt.Errorf("client %d: graph has no edges to mutate", c)
				return
			}
			for i := 0; i < batches; i++ {
				ups := mutateBatch(us.mirror, edges, i, batchSize)
				t0 := time.Now()
				shed := 0
				ua, err := us.postUpdates(ups, &shed)
				if err != nil {
					errCh <- fmt.Errorf("client %d batch %d: %w", c, i, err)
					return
				}
				tr, err := us.readGeneration(ua.Seq, s.verify)
				if err != nil {
					errCh <- fmt.Errorf("client %d batch %d: %w", c, i, err)
					return
				}
				stale := time.Since(t0)
				mu.Lock()
				sum.Requests++
				sum.OK++
				sum.Shed429 += shed
				sum.Solves += int64(tr.Rows)
				sum.RowsStreamed += int64(tr.Rows)
				sum.WarmIterations += int64(tr.Iterations)
				staleness = append(staleness, float64(stale.Microseconds())/1000)
				if s.verify {
					sum.Verified++
				}
				mu.Unlock()
			}
			mirrors[c] = us.mirror
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return sum, err
		}
	}
	updDur := time.Since(start).Seconds()
	if updDur > 0 {
		sum.UpdatesPerSec = float64(sum.OK) / updDur
	}

	// Cold baseline: the same mutation stream, but every step ships the
	// whole graph to /v1/solve — a reload and a from-scratch solve per
	// change. Distinct weights per request defeat coalescing and any
	// front cache, as a changing graph would.
	coldStart := time.Now()
	coldOK := 0
	var cwg sync.WaitGroup
	cerrCh := make(chan error, s.clients)
	for c := 0; c < s.clients; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			mirror := mirrors[c]
			if mirror == nil {
				cerrCh <- fmt.Errorf("client %d: no mirror", c)
				return
			}
			var edges [][2]int
			for i := 0; i < mirror.N; i++ {
				for j := 0; j < mirror.N; j++ {
					if i != j && mirror.HasEdge(i, j) {
						edges = append(edges, [2]int{i, j})
					}
				}
			}
			for i := 0; i < batches; i++ {
				ups := mutateBatch(mirror, edges, i+batches, batchSize)
				gus := make([]graph.WeightUpdate, len(ups))
				for k, u := range ups {
					gus[k] = graph.WeightUpdate{U: u.U, V: u.V, W: u.W}
				}
				if err := mirror.Apply(gus); err != nil {
					cerrCh <- err
					return
				}
				gj, _ := json.Marshal(mirror)
				if s.allPairs {
					// Full-table baseline: every mutation pays a reload and a
					// from-scratch n-destination sweep on /v1/allpairs.
					body, _ := json.Marshal(serve.AllPairsRequest{Graph: gj})
					ar, err := apPost(httpClient, s.targets[c%len(s.targets)], body)
					if err != nil {
						cerrCh <- err
						return
					}
					if ar.code == http.StatusTooManyRequests {
						time.Sleep(50 * time.Millisecond)
						continue
					}
					if ar.code != http.StatusOK || !ar.done {
						cerrCh <- fmt.Errorf("cold allpairs: status %d (%s)", ar.code, ar.errLine)
						return
					}
					if s.verify {
						ref := func(dest int) (*graph.Result, error) { return graph.BellmanFord(mirror, dest) }
						if err := verifyTable(mirror, ar.rows, ref); err != nil {
							cerrCh <- err
							return
						}
					}
					mu.Lock()
					coldOK++
					coldLat = append(coldLat, float64(ar.total.Microseconds())/1000)
					mu.Unlock()
					continue
				}
				body, _ := json.Marshal(serve.SolveRequest{Graph: gj, Dests: dests})
				t0 := time.Now()
				pr, err := post(httpClient, s.targets[c%len(s.targets)], body)
				lat := time.Since(t0)
				if err != nil {
					cerrCh <- err
					return
				}
				if pr.code == http.StatusTooManyRequests {
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if pr.code != http.StatusOK {
					cerrCh <- fmt.Errorf("cold solve: status %d", pr.code)
					return
				}
				if s.verify {
					ref := func(dest int) (*graph.Result, error) { return graph.BellmanFord(mirror, dest) }
					if err := verifyResponse(mirror, &pr.sr, dests, ref); err != nil {
						cerrCh <- err
						return
					}
				}
				mu.Lock()
				coldOK++
				coldLat = append(coldLat, float64(lat.Microseconds())/1000)
				mu.Unlock()
			}
			cerrCh <- nil
		}(c)
	}
	cwg.Wait()
	close(cerrCh)
	for err := range cerrCh {
		if err != nil {
			return sum, err
		}
	}
	coldDur := time.Since(coldStart).Seconds()
	if coldDur > 0 && coldOK > 0 {
		sum.ColdPerSec = float64(coldOK) / coldDur
	}

	sum.DurationS = updDur + coldDur
	sum.Throughput = sum.UpdatesPerSec
	sum.LatencyMS = percentilesOf(coldLat)
	st := percentilesOf(staleness)
	sum.StalenessMS = &st
	return sum, nil
}

func printUpdatesSummary(out io.Writer, sum *Summary, verify bool) {
	shape := fmt.Sprintf("%d dests", sum.DestsPerRequest)
	if sum.AllPairs {
		shape = "full tables"
	}
	fmt.Fprintf(out, "dynamic sessions: %d clients x %d update batches (k=%d) x %s on n=%d\n",
		sum.Clients, sum.PerClient, sum.UpdateBatch, shape, sum.N)
	fmt.Fprintf(out, "updates: %.1f update+re-solve/s  vs cold: %.1f reload+solve/s  (%.1fx)\n",
		sum.UpdatesPerSec, sum.ColdPerSec, ratioOr0(sum.UpdatesPerSec, sum.ColdPerSec))
	if sum.StalenessMS != nil {
		what := "re-solved rows"
		if sum.AllPairs {
			what = "full re-solved table"
		}
		fmt.Fprintf(out, "staleness ms (delta POST -> %s): p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			what, sum.StalenessMS.P50, sum.StalenessMS.P90, sum.StalenessMS.P99, sum.StalenessMS.Max)
	}
	fmt.Fprintf(out, "cold-solve latency ms: p50=%.1f p99=%.1f  warm iterations total %d over %d re-solves\n",
		sum.LatencyMS.P50, sum.LatencyMS.P99, sum.WarmIterations, sum.Solves)
	if verify {
		fmt.Fprintf(out, "verified %d/%d re-solved generations against Bellman-Ford (plus all cold rows)\n",
			sum.Verified, sum.OK)
	}
}

func ratioOr0(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
