// Command ppaload is a closed-loop load generator for ppaserved: C
// concurrent clients each issue R solve requests back-to-back against
// the same workload (selected with the shared -gen/-graph flags), verify
// every response against the sequential reference, honor Retry-After
// backoff on 429, and report latency percentiles and throughput — the
// numbers behind BENCH_PR2.json.
//
// Examples:
//
//	ppaload -url http://localhost:8080 -gen connected -n 64 -c 32 -requests 10
//	ppaload -selfserve -gen connected -n 32 -c 16 -requests 8 -json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"ppamcp/internal/cli"
	"ppamcp/internal/graph"
	"ppamcp/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppaload:", err)
		os.Exit(1)
	}
}

// Summary is the machine-readable report (-json).
type Summary struct {
	Target          string       `json:"target"`
	Gen             cli.Workload `json:"gen"`
	N               int          `json:"n"`
	Clients         int          `json:"clients"`
	PerClient       int          `json:"requests_per_client"`
	DestsPerRequest int          `json:"dests_per_request"`

	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed429    int     `json:"shed_429"`
	Deadline   int     `json:"deadline_504"`
	Errors     int     `json:"errors"`
	Verified   int     `json:"verified"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"throughput_rps"`
	Solves     int64   `json:"dest_solves"`
	PoolHits   int     `json:"pool_hits"`
	Coalesced  int     `json:"coalesced_requests"` // responses with batched > 1

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppaload", flag.ContinueOnError)
	fs.SetOutput(out)
	var w cli.Workload
	w.Register(fs)
	url := fs.String("url", "", "target server (e.g. http://localhost:8080)")
	selfserve := fs.Bool("selfserve", false, "spin up an in-process server on an ephemeral port and load it")
	clients := fs.Int("c", 32, "concurrent closed-loop clients")
	perClient := fs.Int("requests", 10, "requests per client")
	destsPer := fs.Int("dests", 2, "destinations per request")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-request deadline sent to the server (0 = server default)")
	bits := fs.Uint("bits", 0, "machine word width h forced on the server (0 = auto)")
	inline := fs.Bool("inline", false, "send the graph inline instead of as a generator spec")
	verify := fs.Bool("verify", true, "check every response against Bellman-Ford")
	asJSON := fs.Bool("json", false, "emit the machine-readable summary")
	workers := fs.Int("workers", 0, "selfserve: solver workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == !*selfserve {
		return fmt.Errorf("need exactly one of -url or -selfserve")
	}
	if *clients < 1 || *perClient < 1 || *destsPer < 1 {
		return fmt.Errorf("-c, -requests and -dests must be positive")
	}

	g, err := w.Build()
	if err != nil {
		return err
	}
	if *destsPer > g.N {
		*destsPer = g.N
	}

	target := *url
	if *selfserve {
		svc := serve.New(serve.Config{Workers: *workers, MaxVertices: g.N})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: svc.Handler()}
		go httpSrv.Serve(ln)
		target = "http://" + ln.Addr().String()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			httpSrv.Shutdown(ctx)
			svc.Shutdown(ctx)
		}()
	}

	// Sequential references, computed lazily once per destination.
	var refMu sync.Mutex
	refs := make(map[int]*graph.Result)
	reference := func(dest int) (*graph.Result, error) {
		refMu.Lock()
		defer refMu.Unlock()
		if r, ok := refs[dest]; ok {
			return r, nil
		}
		r, err := graph.BellmanFord(g, dest)
		if err == nil {
			refs[dest] = r
		}
		return r, err
	}

	graphJSON, err := json.Marshal(g)
	if err != nil {
		return err
	}
	specJSON, err := json.Marshal(&w)
	if err != nil {
		return err
	}

	sum := Summary{
		Target: target, Gen: w, N: g.N,
		Clients: *clients, PerClient: *perClient, DestsPerRequest: *destsPer,
	}
	var mu sync.Mutex // guards sum tallies and latencies
	var latencies []float64
	httpClient := &http.Client{Timeout: 5 * time.Minute}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < *perClient; r++ {
				dests := make([]int, *destsPer)
				for i := range dests {
					dests[i] = (c*31 + r*7 + i*13) % g.N
				}
				req := serve.SolveRequest{Dests: dests, Bits: *bits, TimeoutMS: *timeoutMS}
				if *inline {
					req.Graph = graphJSON
				} else {
					req.Gen = specJSON
				}
				body, _ := json.Marshal(req)

				var code int
				var sr serve.SolveResponse
				var reqErr error
				var elapsed time.Duration
				for attempt := 0; attempt < 5; attempt++ {
					t0 := time.Now()
					code, sr, reqErr = post(httpClient, target, body)
					elapsed = time.Since(t0)
					if code != http.StatusTooManyRequests {
						break
					}
					mu.Lock()
					sum.Shed429++
					mu.Unlock()
					time.Sleep(50 * time.Millisecond) // closed-loop backoff
				}

				mu.Lock()
				sum.Requests++
				latencies = append(latencies, float64(elapsed.Milliseconds()))
				switch {
				case reqErr != nil:
					sum.Errors++
				case code == http.StatusOK:
					sum.OK++
					sum.Solves += int64(len(sr.Results))
					if sr.PoolHit {
						sum.PoolHits++
					}
					if sr.Batched > 1 {
						sum.Coalesced++
					}
				case code == http.StatusGatewayTimeout:
					sum.Deadline++
				default:
					sum.Errors++
				}
				mu.Unlock()

				if code == http.StatusOK && *verify {
					if err := verifyResponse(g, &sr, dests, reference); err != nil {
						mu.Lock()
						sum.Errors++
						sum.OK--
						mu.Unlock()
						fmt.Fprintf(out, "VERIFY FAILED (client %d req %d): %v\n", c, r, err)
					} else {
						mu.Lock()
						sum.Verified++
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	sum.DurationS = time.Since(start).Seconds()
	if sum.DurationS > 0 {
		sum.Throughput = float64(sum.OK) / sum.DurationS
	}
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	sum.LatencyMS.P50 = pct(0.50)
	sum.LatencyMS.P90 = pct(0.90)
	sum.LatencyMS.P99 = pct(0.99)
	if n := len(latencies); n > 0 {
		sum.LatencyMS.Max = latencies[n-1]
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "target %s  graph n=%d (%s)\n", sum.Target, sum.N, describe(&w))
		fmt.Fprintf(out, "%d clients x %d requests x %d dests: %d ok, %d shed(429), %d deadline, %d errors\n",
			sum.Clients, sum.PerClient, sum.DestsPerRequest, sum.OK, sum.Shed429, sum.Deadline, sum.Errors)
		fmt.Fprintf(out, "throughput %.1f req/s over %.2fs  (%d dest solves; pool hits %d, coalesced %d)\n",
			sum.Throughput, sum.DurationS, sum.Solves, sum.PoolHits, sum.Coalesced)
		fmt.Fprintf(out, "latency ms: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
			sum.LatencyMS.P50, sum.LatencyMS.P90, sum.LatencyMS.P99, sum.LatencyMS.Max)
		if *verify {
			fmt.Fprintf(out, "verified %d/%d responses against Bellman-Ford\n", sum.Verified, sum.OK)
		}
	}
	if *verify && sum.Verified != sum.OK {
		return fmt.Errorf("%d of %d responses failed verification", sum.OK-sum.Verified, sum.OK)
	}
	if sum.Errors > 0 {
		return fmt.Errorf("%d requests failed", sum.Errors)
	}
	return nil
}

func describe(w *cli.Workload) string {
	if w.File != "" {
		return "file " + w.File
	}
	gen := w.Gen
	if gen == "" {
		gen = "random"
	}
	return "gen " + gen + " seed " + strconv.FormatInt(w.Seed, 10)
}

// post issues one solve request; non-2xx bodies are decoded for their
// error text but reported via the status code.
func post(c *http.Client, target string, body []byte) (int, serve.SolveResponse, error) {
	var sr serve.SolveResponse
	resp, err := c.Post(target+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, sr, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, sr, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, sr, nil
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		return resp.StatusCode, sr, err
	}
	return resp.StatusCode, sr, nil
}

// verifyResponse checks distances against Bellman-Ford and certifies the
// returned next-hop pointers by walking them.
func verifyResponse(g *graph.Graph, sr *serve.SolveResponse, dests []int, reference func(int) (*graph.Result, error)) error {
	if len(sr.Results) != len(dests) {
		return fmt.Errorf("%d results for %d dests", len(sr.Results), len(dests))
	}
	for k, dr := range sr.Results {
		if dr.Dest != dests[k] {
			return fmt.Errorf("result %d is for dest %d, want %d", k, dr.Dest, dests[k])
		}
		want, err := reference(dr.Dest)
		if err != nil {
			return err
		}
		res := graph.Result{Dest: dr.Dest, Dist: make([]int64, g.N), Next: dr.Next, Iterations: dr.Iterations}
		for i, d := range dr.Dist {
			if d < 0 {
				res.Dist[i] = graph.NoEdge
			} else {
				res.Dist[i] = d
			}
		}
		if !graph.SameDistances(&res, want) {
			return fmt.Errorf("dest %d: distances diverge from Bellman-Ford", dr.Dest)
		}
		if err := graph.CheckResult(g, &res); err != nil {
			return fmt.Errorf("dest %d: %v", dr.Dest, err)
		}
	}
	return nil
}
