// Command ppaload is a closed-loop load generator for ppaserved and
// pparouter: C concurrent clients each issue R solve requests
// back-to-back, verify every response against the sequential reference,
// honor Retry-After backoff on 429, and report latency percentiles,
// throughput, and client-observed cache behavior — the numbers behind
// BENCH_PR2.json and BENCH_PR7.json.
//
// Targets. Exactly one of:
//
//	-url       one server (ppaserved or pparouter)
//	-targets   comma-separated servers; clients spread round-robin
//	-selfserve in-process ppaserved on an ephemeral port
//	-fleet     in-process fleet sweep: for each size in the list, boot
//	           that many ppaserved backends behind a pparouter and run
//	           a cache-miss row and a Zipf row (the scaling benchmark)
//
// Workload shape. -graphs K rotates the load over K generator seeds;
// -zipf s (s > 1) draws the graph per request from a Zipf distribution
// instead of a uniform stripe, concentrating load on a few hot graphs
// the way real traffic does — the front-door cache's natural prey.
// -allpairs switches every request to POST /v1/allpairs: each client
// streams full n-destination tables, every row is verified, and the
// report adds time-to-first-row and time-to-full-table percentiles.
// -updates N switches to dynamic-graph session mode: each client opens
// one streaming session, pushes N weight-delta batches through it
// (verifying every re-solved generation against Bellman-Ford on a local
// mirror), then replays the same number of mutations as cold inline
// solves — reporting updates/sec vs cold solves/sec and staleness
// percentiles. Combining -updates with -allpairs creates the sessions
// with "dests": "all": every generation streams the full n-destination
// table (verified row by row against Bellman-Ford), the staleness
// percentiles become table staleness (delta POST to holding the whole
// re-solved table), and the cold baseline replays each mutation as a
// from-scratch /v1/allpairs table.
//
// Examples:
//
//	ppaload -url http://localhost:8080 -gen connected -n 64 -c 32 -requests 10
//	ppaload -targets http://a:8081,http://b:8081 -graphs 8 -zipf 1.4 -json
//	ppaload -fleet 1,2,4 -backend-delay 8ms -json
//	ppaload -selfserve -allpairs -gen connected -n 64 -c 4 -requests 3 -json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ppamcp/internal/cli"
	"ppamcp/internal/graph"
	"ppamcp/internal/router"
	"ppamcp/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ppaload:", err)
		os.Exit(1)
	}
}

// Percentiles summarizes one latency distribution in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Summary is the machine-readable report for one load run (-json).
type Summary struct {
	Target          string       `json:"target"`
	Gen             cli.Workload `json:"gen"`
	N               int          `json:"n"`
	Clients         int          `json:"clients"`
	PerClient       int          `json:"requests_per_client"`
	DestsPerRequest int          `json:"dests_per_request"`
	Graphs          int          `json:"graphs"`
	Zipf            float64      `json:"zipf,omitempty"`
	Mix             string       `json:"mix,omitempty"`
	Backends        int          `json:"backends,omitempty"`

	Requests   int     `json:"requests"`
	OK         int     `json:"ok"`
	Shed429    int     `json:"shed_429"`
	Unserved   int     `json:"unserved_429"` // still shed after all retries
	Deadline   int     `json:"deadline_504"`
	Errors     int     `json:"errors"`
	Verified   int     `json:"verified"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"throughput_rps"`
	Solves     int64   `json:"dest_solves"`
	PoolHits   int     `json:"pool_hits"`
	Coalesced  int     `json:"coalesced_requests"` // responses with batched > 1

	// Client-observed router cache behavior (X-Ppa-Cache response
	// header; zero against a bare ppaserved).
	CacheHits      int     `json:"cache_hits"`
	CacheCollapsed int     `json:"cache_collapsed"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	// BackendSpread counts upstream-served responses per backend
	// (X-Ppa-Backend header) — the router's observed load balance.
	BackendSpread map[string]int `json:"backend_spread,omitempty"`

	LatencyMS Percentiles `json:"latency_ms"`

	// All-pairs streaming mode (-allpairs): rows received across all
	// streams, time-to-first-row and time-to-full-table distributions.
	AllPairs     bool         `json:"allpairs,omitempty"`
	RowsStreamed int64        `json:"rows_streamed,omitempty"`
	FirstRowMS   *Percentiles `json:"first_row_ms,omitempty"`
	FullTableMS  *Percentiles `json:"full_table_ms,omitempty"`

	// Dynamic-graph session mode (-updates): delta batches pushed through
	// streaming sessions vs the same mutations replayed as cold inline
	// solves. StalenessMS is the delta-POST-to-re-solved-rows latency;
	// WarmIterations sums the re-solves' DP round counts (the warm-start
	// win the mode exists to measure).
	UpdatesMode    bool         `json:"updates_mode,omitempty"`
	UpdateBatch    int          `json:"update_batch,omitempty"`
	UpdatesPerSec  float64      `json:"updates_per_sec,omitempty"`
	ColdPerSec     float64      `json:"cold_solves_per_sec,omitempty"`
	StalenessMS    *Percentiles `json:"staleness_ms,omitempty"`
	WarmIterations int64        `json:"warm_iterations,omitempty"`
}

// FleetReport is the -fleet output: one miss row and one Zipf row per
// fleet size, plus the knobs that shaped them.
type FleetReport struct {
	HostCPUs       int     `json:"host_cpus"`
	BackendWorkers int     `json:"backend_workers"`
	BackendDelayMS float64 `json:"backend_delay_ms"`
	RouterVNodes   int     `json:"router_vnodes"`
	RouterCache    int     `json:"router_cache_entries"`
	// Note states the measurement honestly: on hosts with few cores the
	// backend solve delay emulates per-device occupancy, since real
	// CPU-parallel speedup is unavailable to measure.
	Note string    `json:"note"`
	Rows []Summary `json:"rows"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ppaload", flag.ContinueOnError)
	fs.SetOutput(out)
	var w cli.Workload
	w.Register(fs)
	url := fs.String("url", "", "target server (e.g. http://localhost:8080)")
	targets := fs.String("targets", "", "comma-separated target servers; clients spread round-robin")
	selfserve := fs.Bool("selfserve", false, "spin up an in-process server on an ephemeral port and load it")
	fleet := fs.String("fleet", "", "comma-separated fleet sizes (e.g. 1,2,4): in-process router+backends sweep")
	clients := fs.Int("c", 32, "concurrent closed-loop clients")
	perClient := fs.Int("requests", 10, "requests per client")
	destsPer := fs.Int("dests", 2, "destinations per request")
	allPairs := fs.Bool("allpairs", false, "stream full tables from /v1/allpairs instead of /v1/solve (ignores -dests)")
	updates := fs.Int("updates", 0, "dynamic-graph session mode: update batches per client pushed through /v1/session (ignores -requests)")
	updateSize := fs.Int("update-size", 1, "weight edits per update batch in -updates mode")
	graphs := fs.Int("graphs", 1, "distinct graphs to rotate over (generator seeds seed..seed+K-1)")
	zipfS := fs.Float64("zipf", 0, "Zipf skew s > 1 for graph selection (0 = uniform stripe)")
	timeoutMS := fs.Int64("timeout-ms", 0, "per-request deadline sent to the server (0 = server default)")
	bits := fs.Uint("bits", 0, "machine word width h forced on the server (0 = auto)")
	inline := fs.Bool("inline", false, "send the graph inline instead of as a generator spec")
	verify := fs.Bool("verify", true, "check every response against Bellman-Ford")
	asJSON := fs.Bool("json", false, "emit the machine-readable summary")
	workers := fs.Int("workers", 0, "selfserve: solver workers (0 = GOMAXPROCS)")
	backendWorkers := fs.Int("backend-workers", 1, "fleet: solver workers per backend")
	backendDelay := fs.Duration("backend-delay", 0, "fleet: per-batch device occupancy emulated on each backend")
	routerCache := fs.Int("router-cache", 4096, "fleet: router result cache entries")
	routerVNodes := fs.Int("router-vnodes", 64, "fleet: virtual nodes per backend")
	if err := fs.Parse(args); err != nil {
		return err
	}
	modes := 0
	for _, on := range []bool{*url != "", *targets != "", *selfserve, *fleet != ""} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("need exactly one of -url, -targets, -selfserve or -fleet")
	}
	if *clients < 1 || *perClient < 1 || *destsPer < 1 {
		return fmt.Errorf("-c, -requests and -dests must be positive")
	}
	if *graphs < 1 {
		return fmt.Errorf("-graphs must be positive")
	}
	if *zipfS != 0 && *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (or 0 to disable)")
	}
	if *graphs > 1 && w.File != "" {
		return fmt.Errorf("-graphs > 1 needs a generator workload, not -graph file")
	}
	if *allPairs && *fleet != "" {
		return fmt.Errorf("-allpairs drives backends directly; it does not combine with -fleet")
	}
	if *updates > 0 && (*fleet != "" || *zipfS != 0) {
		return fmt.Errorf("-updates does not combine with -fleet or -zipf")
	}
	if *updates > 0 && *updateSize < 1 {
		return fmt.Errorf("-update-size must be positive")
	}

	gs, err := buildGraphs(&w, *graphs)
	if err != nil {
		return err
	}
	n := gs[0].N
	if *destsPer > n {
		*destsPer = n
	}

	if *fleet != "" {
		sizes, err := parseSizes(*fleet)
		if err != nil {
			return err
		}
		return runFleet(out, fleetSpec{
			sizes: sizes, w: w, graphs: gs,
			clients: *clients, perClient: *perClient, destsPer: *destsPer,
			zipfS: *zipfS, verify: *verify, asJSON: *asJSON,
			backendWorkers: *backendWorkers, backendDelay: *backendDelay,
			routerCache: *routerCache, routerVNodes: *routerVNodes,
		})
	}

	var targetList []string
	switch {
	case *url != "":
		targetList = []string{*url}
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
		if len(targetList) == 0 {
			return fmt.Errorf("-targets is empty after parsing")
		}
	case *selfserve:
		cfg := serve.Config{Workers: *workers, MaxVertices: n}
		if *updates > 0 {
			// Every client owns one session; don't let the session quota
			// under-admit the requested concurrency.
			cfg.MaxSessions = *clients
			if *destsPer > cfg.MaxSessionDests {
				cfg.MaxSessionDests = *destsPer
			}
		}
		svc := serve.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: svc.Handler()}
		go httpSrv.Serve(ln)
		targetList = []string{"http://" + ln.Addr().String()}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			httpSrv.Shutdown(ctx)
			svc.Shutdown(ctx)
		}()
	}

	var sum Summary
	if *updates > 0 {
		sum, err = runUpdates(loadSpec{
			targets: targetList, w: w, graphs: gs,
			clients: *clients, perClient: *updates, destsPer: *destsPer,
			verify: *verify, allPairs: *allPairs, out: out,
		}, *updates, *updateSize)
	} else {
		sum, err = runLoad(loadSpec{
			targets: targetList, w: w, graphs: gs,
			clients: *clients, perClient: *perClient, destsPer: *destsPer,
			timeoutMS: *timeoutMS, bits: *bits, inline: *inline,
			verify: *verify, zipfS: *zipfS, allPairs: *allPairs, out: out,
		})
	}
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else if sum.UpdatesMode {
		printUpdatesSummary(out, &sum, *verify)
	} else {
		printSummary(out, &w, &sum, *verify)
	}
	return checkSummary(&sum, *verify)
}

// buildGraphs builds k graphs from the workload spec, varying the seed.
func buildGraphs(w *cli.Workload, k int) ([]*graph.Graph, error) {
	gs := make([]*graph.Graph, k)
	for i := range gs {
		wi := *w
		wi.Seed = w.Seed + int64(i)
		g, err := wi.Build()
		if err != nil {
			return nil, err
		}
		gs[i] = g
	}
	return gs, nil
}

func parseSizes(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad fleet size %q", f)
		}
		sizes = append(sizes, v)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("empty -fleet list")
	}
	return sizes, nil
}

// loadSpec is one load run: targets, workload, and client shape.
type loadSpec struct {
	targets   []string
	w         cli.Workload
	graphs    []*graph.Graph
	seeds     []int64 // generator seed per graph (nil: w.Seed+i)
	clients   int
	perClient int
	destsPer  int
	timeoutMS int64
	bits      uint
	inline    bool
	verify    bool
	zipfS     float64 // 0 = uniform stripe over graphs
	mix       string  // label for the summary ("", "miss", "zipf")
	backends  int     // informational, for fleet rows
	allPairs  bool    // stream full tables from /v1/allpairs
	out       io.Writer
}

// pickGraph returns the graph index and destination list for request r
// of client c. The stripe mix walks all graphs with (nearly) unique
// (graph, dests) pairs — a cache-miss workload; the Zipf mix
// concentrates on hot graphs with a small per-graph dest vocabulary, so
// identical requests recur and the front-door cache can engage.
func (s *loadSpec) pickGraph(zipf *rand.Zipf, zipfMu *sync.Mutex, c, r int) (int, []int) {
	n := s.graphs[0].N
	k := len(s.graphs)
	dests := make([]int, s.destsPer)
	if zipf != nil {
		zipfMu.Lock()
		gi := int(zipf.Uint64())
		zipfMu.Unlock()
		for i := range dests {
			dests[i] = (gi*13 + (r%4)*5 + i*7) % n
		}
		return gi, dests
	}
	if k == 1 {
		for i := range dests {
			dests[i] = (c*31 + r*7 + i*13) % n
		}
		return 0, dests
	}
	// Graph index (c+r)%k keeps the concurrent clients on k *different*
	// graphs at any instant (a plain stripe over c*perClient+r collapses
	// to lockstep waves whenever perClient is a multiple of k), while the
	// unique request ordinal keeps the (graph, dests) identity fresh — a
	// true cache-miss workload.
	base := c*s.perClient + r
	gi := (c + r) % k
	for i := range dests {
		dests[i] = (base + i*13) % n
	}
	return gi, dests
}

// runLoad drives the closed loop against s.targets and tallies the
// Summary. Clients spread round-robin over the targets.
func runLoad(s loadSpec) (Summary, error) {
	graphJSON := make([][]byte, len(s.graphs))
	specJSON := make([][]byte, len(s.graphs))
	for i, g := range s.graphs {
		var err error
		if graphJSON[i], err = json.Marshal(g); err != nil {
			return Summary{}, err
		}
		wi := s.w
		wi.Seed = s.w.Seed + int64(i)
		if s.seeds != nil {
			wi.Seed = s.seeds[i]
		}
		if specJSON[i], err = json.Marshal(&wi); err != nil {
			return Summary{}, err
		}
	}

	// Sequential references, computed lazily once per (graph, dest).
	var refMu sync.Mutex
	refs := make(map[int64]*graph.Result)
	reference := func(gi int) func(int) (*graph.Result, error) {
		return func(dest int) (*graph.Result, error) {
			key := int64(gi)<<32 | int64(dest)
			refMu.Lock()
			defer refMu.Unlock()
			if r, ok := refs[key]; ok {
				return r, nil
			}
			r, err := graph.BellmanFord(s.graphs[gi], dest)
			if err == nil {
				refs[key] = r
			}
			return r, err
		}
	}

	var zipf *rand.Zipf
	var zipfMu sync.Mutex
	if s.zipfS > 1 && len(s.graphs) > 1 {
		zipf = rand.NewZipf(rand.New(rand.NewSource(1)), s.zipfS, 1, uint64(len(s.graphs)-1))
	}

	sum := Summary{
		Target: strings.Join(s.targets, ","), Gen: s.w, N: s.graphs[0].N,
		Clients: s.clients, PerClient: s.perClient, DestsPerRequest: s.destsPer,
		Graphs: len(s.graphs), Zipf: s.zipfS, Mix: s.mix, Backends: s.backends,
	}
	var mu sync.Mutex // guards sum tallies and latencies
	var latencies, firstRows, fullTables []float64
	httpClient := &http.Client{Timeout: 5 * time.Minute}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < s.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			target := s.targets[c%len(s.targets)]
			for r := 0; r < s.perClient; r++ {
				gi, dests := s.pickGraph(zipf, &zipfMu, c, r)
				if s.allPairs {
					apReq := serve.AllPairsRequest{Bits: s.bits, TimeoutMS: s.timeoutMS}
					if s.inline || s.w.File != "" {
						apReq.Graph = graphJSON[gi]
					} else {
						apReq.Gen = specJSON[gi]
					}
					body, _ := json.Marshal(apReq)

					var ar apResult
					var reqErr error
					for attempt := 0; attempt < 5; attempt++ {
						ar, reqErr = apPost(httpClient, target, body)
						if ar.code != http.StatusTooManyRequests {
							break
						}
						mu.Lock()
						sum.Shed429++
						mu.Unlock()
						time.Sleep(50 * time.Millisecond)
					}

					mu.Lock()
					sum.Requests++
					latencies = append(latencies, float64(ar.total.Milliseconds()))
					sum.RowsStreamed += int64(len(ar.rows))
					switch {
					case reqErr != nil:
						sum.Errors++
					case ar.code == http.StatusOK && ar.done:
						sum.OK++
						sum.Solves += int64(len(ar.rows))
						if ar.trailer.PoolHit {
							sum.PoolHits++
						}
						firstRows = append(firstRows, float64(ar.firstRow.Milliseconds()))
						fullTables = append(fullTables, float64(ar.total.Milliseconds()))
					case ar.code == http.StatusOK:
						// The stream was committed but ended without a done
						// trailer: a mid-flight deadline or failure.
						if strings.Contains(ar.errLine, "deadline") || strings.Contains(ar.errLine, "cancel") {
							sum.Deadline++
						} else {
							sum.Errors++
						}
					case ar.code == http.StatusTooManyRequests:
						sum.Unserved++
					case ar.code == http.StatusGatewayTimeout:
						sum.Deadline++
					default:
						sum.Errors++
					}
					mu.Unlock()

					if ar.code == http.StatusOK && ar.done && s.verify {
						if err := verifyTable(s.graphs[gi], ar.rows, reference(gi)); err != nil {
							mu.Lock()
							sum.Errors++
							sum.OK--
							mu.Unlock()
							fmt.Fprintf(s.out, "VERIFY FAILED (client %d req %d): %v\n", c, r, err)
						} else {
							mu.Lock()
							sum.Verified++
							mu.Unlock()
						}
					}
					continue
				}
				req := serve.SolveRequest{Dests: dests, Bits: s.bits, TimeoutMS: s.timeoutMS}
				if s.inline || s.w.File != "" {
					req.Graph = graphJSON[gi]
				} else {
					req.Gen = specJSON[gi]
				}
				body, _ := json.Marshal(req)

				var pr postResult
				var reqErr error
				var elapsed time.Duration
				for attempt := 0; attempt < 5; attempt++ {
					t0 := time.Now()
					pr, reqErr = post(httpClient, target, body)
					elapsed = time.Since(t0)
					if pr.code != http.StatusTooManyRequests {
						break
					}
					mu.Lock()
					sum.Shed429++
					mu.Unlock()
					time.Sleep(50 * time.Millisecond) // closed-loop backoff
				}

				mu.Lock()
				sum.Requests++
				latencies = append(latencies, float64(elapsed.Milliseconds()))
				switch {
				case reqErr != nil:
					sum.Errors++
				case pr.code == http.StatusOK:
					sum.OK++
					sum.Solves += int64(len(pr.sr.Results))
					if pr.sr.PoolHit {
						sum.PoolHits++
					}
					if pr.sr.Batched > 1 {
						sum.Coalesced++
					}
					switch pr.cacheSrc {
					case "hit":
						sum.CacheHits++
					case "collapsed":
						sum.CacheCollapsed++
					}
					if pr.backend != "" {
						if sum.BackendSpread == nil {
							sum.BackendSpread = make(map[string]int)
						}
						sum.BackendSpread[pr.backend]++
					}
				case pr.code == http.StatusTooManyRequests:
					// The server is still shedding after every retry: the
					// request went unserved by design (admission control),
					// which is not a failure of the serving path.
					sum.Unserved++
				case pr.code == http.StatusGatewayTimeout:
					sum.Deadline++
				default:
					sum.Errors++
				}
				mu.Unlock()

				if pr.code == http.StatusOK && s.verify {
					if err := verifyResponse(s.graphs[gi], &pr.sr, dests, reference(gi)); err != nil {
						mu.Lock()
						sum.Errors++
						sum.OK--
						mu.Unlock()
						fmt.Fprintf(s.out, "VERIFY FAILED (client %d req %d): %v\n", c, r, err)
					} else {
						mu.Lock()
						sum.Verified++
						mu.Unlock()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	sum.DurationS = time.Since(start).Seconds()
	if sum.DurationS > 0 {
		sum.Throughput = float64(sum.OK) / sum.DurationS
	}
	if sum.OK > 0 {
		sum.CacheHitRatio = float64(sum.CacheHits+sum.CacheCollapsed) / float64(sum.OK)
	}
	sum.LatencyMS = percentilesOf(latencies)
	if s.allPairs {
		sum.AllPairs = true
		fr, ft := percentilesOf(firstRows), percentilesOf(fullTables)
		sum.FirstRowMS, sum.FullTableMS = &fr, &ft
	}
	return sum, nil
}

// percentilesOf sorts ms in place and summarizes it.
func percentilesOf(ms []float64) Percentiles {
	sort.Float64s(ms)
	pct := func(p float64) float64 {
		if len(ms) == 0 {
			return 0
		}
		return ms[int(p*float64(len(ms)-1))]
	}
	out := Percentiles{P50: pct(0.50), P90: pct(0.90), P99: pct(0.99)}
	if n := len(ms); n > 0 {
		out.Max = ms[n-1]
	}
	return out
}

// checkSummary turns bad tallies into a process-level failure.
func checkSummary(sum *Summary, verify bool) error {
	if verify && sum.Verified != sum.OK {
		return fmt.Errorf("%d of %d responses failed verification", sum.OK-sum.Verified, sum.OK)
	}
	if sum.Errors > 0 {
		return fmt.Errorf("%d requests failed", sum.Errors)
	}
	return nil
}

func printSummary(out io.Writer, w *cli.Workload, sum *Summary, verify bool) {
	fmt.Fprintf(out, "target %s  graph n=%d (%s, %d graphs)\n", sum.Target, sum.N, describe(w), sum.Graphs)
	fmt.Fprintf(out, "%d clients x %d requests x %d dests: %d ok, %d shed(429), %d unserved, %d deadline, %d errors\n",
		sum.Clients, sum.PerClient, sum.DestsPerRequest, sum.OK, sum.Shed429, sum.Unserved, sum.Deadline, sum.Errors)
	fmt.Fprintf(out, "throughput %.1f req/s over %.2fs  (%d dest solves; pool hits %d, coalesced %d)\n",
		sum.Throughput, sum.DurationS, sum.Solves, sum.PoolHits, sum.Coalesced)
	if sum.CacheHits+sum.CacheCollapsed > 0 {
		fmt.Fprintf(out, "front cache: %d hits, %d collapsed (%.0f%% of ok)\n",
			sum.CacheHits, sum.CacheCollapsed, 100*sum.CacheHitRatio)
	}
	fmt.Fprintf(out, "latency ms: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
		sum.LatencyMS.P50, sum.LatencyMS.P90, sum.LatencyMS.P99, sum.LatencyMS.Max)
	if sum.AllPairs && sum.FirstRowMS != nil {
		fmt.Fprintf(out, "allpairs: %d rows streamed; first-row ms p50=%.0f p99=%.0f; full-table ms p50=%.0f p99=%.0f\n",
			sum.RowsStreamed, sum.FirstRowMS.P50, sum.FirstRowMS.P99, sum.FullTableMS.P50, sum.FullTableMS.P99)
	}
	if verify {
		fmt.Fprintf(out, "verified %d/%d responses against Bellman-Ford\n", sum.Verified, sum.OK)
	}
}

// fleetSpec shapes one -fleet sweep.
type fleetSpec struct {
	sizes          []int
	w              cli.Workload
	graphs         []*graph.Graph
	clients        int
	perClient      int
	destsPer       int
	zipfS          float64
	verify         bool
	asJSON         bool
	backendWorkers int
	backendDelay   time.Duration
	routerCache    int
	routerVNodes   int
}

// runFleet boots, for each fleet size, that many in-process ppaserved
// backends behind an in-process pparouter, and runs two rows through
// the front door: a cache-miss stripe (every request a fresh identity —
// measures backend scaling) and a Zipf mix (hot graphs recur — measures
// the front-door cache).
func runFleet(out io.Writer, fs fleetSpec) error {
	if len(fs.graphs) == 1 {
		// A fleet sweep over one graph would pin everything to one
		// backend; default to a healthy rotation.
		gs, err := buildGraphs(&fs.w, 16)
		if err != nil {
			return err
		}
		fs.graphs = gs
	}
	zipfS := fs.zipfS
	if zipfS == 0 {
		zipfS = 1.4
	}
	report := FleetReport{
		HostCPUs:       runtime.NumCPU(),
		BackendWorkers: fs.backendWorkers,
		BackendDelayMS: float64(fs.backendDelay) / float64(time.Millisecond),
		RouterVNodes:   fs.routerVNodes,
		RouterCache:    fs.routerCache,
		Note: "backend-delay emulates per-batch device occupancy on each backend; " +
			"with it set, throughput scaling across fleet sizes reflects request " +
			"placement rather than host CPU parallelism",
	}

	for _, size := range fs.sizes {
		rows, err := runFleetSize(out, &fs, size, zipfS)
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, rows...)
	}

	if fs.asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	for i := range report.Rows {
		r := &report.Rows[i]
		fmt.Fprintf(out, "fleet=%d mix=%-4s  %.1f req/s  ok=%d unserved=%d cache=%.0f%%  p50=%.0fms p99=%.0fms\n",
			r.Backends, r.Mix, r.Throughput, r.OK, r.Unserved, 100*r.CacheHitRatio, r.LatencyMS.P50, r.LatencyMS.P99)
	}
	return nil
}

// runFleetSize boots one fleet of the given size, runs the miss and
// Zipf rows, and tears the fleet down.
func runFleetSize(out io.Writer, fs *fleetSpec, size int, zipfS float64) ([]Summary, error) {
	n := fs.graphs[0].N
	type backend struct {
		svc *serve.Server
		srv *http.Server
	}
	var backends []backend
	var urls []string
	shutdownAll := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, b := range backends {
			b.srv.Shutdown(ctx)
			b.svc.Shutdown(ctx)
		}
	}
	for i := 0; i < size; i++ {
		svc := serve.New(serve.Config{
			Workers:     fs.backendWorkers,
			MaxVertices: n,
			SolveDelay:  fs.backendDelay,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdownAll()
			return nil, err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		backends = append(backends, backend{svc, srv})
		urls = append(urls, "http://"+ln.Addr().String())
	}
	rt, err := router.New(router.Config{
		Backends:     urls,
		VNodes:       fs.routerVNodes,
		CacheEntries: fs.routerCache,
	})
	if err != nil {
		shutdownAll()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		shutdownAll()
		return nil, err
	}
	front := &http.Server{Handler: rt.Handler()}
	go front.Serve(ln)
	frontURL := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		front.Shutdown(ctx)
		rt.Shutdown(ctx)
		shutdownAll()
	}()

	// Pick a placement-balanced graph set for this fleet: each backend
	// owns an equal share, so the rows measure aggregate capacity rather
	// than the placement luck of one particular draw.
	rowGraphs, rowSeeds, err := balancedGraphs(fs.w, fs.graphs, urls, fs.routerVNodes)
	if err != nil {
		return nil, err
	}

	var rows []Summary
	for _, mix := range []struct {
		name string
		zipf float64
	}{{"miss", 0}, {"zipf", zipfS}} {
		sum, err := runLoad(loadSpec{
			targets: []string{frontURL}, w: fs.w, graphs: rowGraphs, seeds: rowSeeds,
			clients: fs.clients, perClient: fs.perClient, destsPer: fs.destsPer,
			verify: fs.verify, zipfS: mix.zipf, mix: mix.name, backends: size,
			out: out,
		})
		if err != nil {
			return nil, err
		}
		if err := checkSummary(&sum, fs.verify); err != nil {
			return nil, fmt.Errorf("fleet=%d mix=%s: %w", size, mix.name, err)
		}
		rows = append(rows, sum)
	}
	return rows, nil
}

// balancedGraphs picks len(want) graphs from a 4x candidate pool (seeds
// w.Seed..w.Seed+4k-1) so that consecutive picks rotate through the
// backends that will own them on the fleet's hash ring — the same ring
// the router builds (same member URLs, same vnode count). The returned
// seed list records which generator seed produced each pick.
func balancedGraphs(w cli.Workload, want []*graph.Graph, urls []string, vnodes int) ([]*graph.Graph, []int64, error) {
	k := len(want)
	if len(urls) <= 1 {
		return want, nil, nil // one backend: placement is moot
	}
	pool := 4 * k
	cands, err := buildGraphs(&w, pool)
	if err != nil {
		return nil, nil, err
	}
	ring := router.NewRing(urls, vnodes)
	buckets := make(map[string][]int) // owner -> candidate indices
	for i, g := range cands {
		h, err := serve.PickBits(g, 0)
		if err != nil {
			return nil, nil, err
		}
		owner, _ := ring.Lookup(graph.Fingerprint(g, h))
		buckets[owner] = append(buckets[owner], i)
	}
	members := ring.Members()
	var idx []int
	for round := 0; len(idx) < k; round++ {
		progressed := false
		for _, m := range members {
			if len(idx) >= k {
				break
			}
			if round < len(buckets[m]) {
				idx = append(idx, buckets[m][round])
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	used := make(map[int]bool, len(idx))
	for _, i := range idx {
		used[i] = true
	}
	for i := 0; len(idx) < k && i < pool; i++ {
		if !used[i] {
			idx = append(idx, i)
		}
	}
	gs := make([]*graph.Graph, len(idx))
	seeds := make([]int64, len(idx))
	for j, i := range idx {
		gs[j] = cands[i]
		seeds[j] = w.Seed + int64(i)
	}
	return gs, seeds, nil
}

func describe(w *cli.Workload) string {
	if w.File != "" {
		return "file " + w.File
	}
	gen := w.Gen
	if gen == "" {
		gen = "random"
	}
	return "gen " + gen + " seed " + strconv.FormatInt(w.Seed, 10)
}

// postResult is one exchange as the client saw it: status code, the
// router's X-Ppa-Cache and X-Ppa-Backend headers (empty against a bare
// ppaserved), and the decoded 200 body.
type postResult struct {
	code     int
	cacheSrc string
	backend  string
	sr       serve.SolveResponse
}

// post issues one solve request; non-2xx bodies are decoded for their
// error text but reported via the status code.
func post(c *http.Client, target string, body []byte) (postResult, error) {
	var pr postResult
	resp, err := c.Post(target+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return pr, err
	}
	defer resp.Body.Close()
	pr.code = resp.StatusCode
	pr.cacheSrc = resp.Header.Get("X-Ppa-Cache")
	pr.backend = resp.Header.Get("X-Ppa-Backend")
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return pr, err
	}
	if resp.StatusCode != http.StatusOK {
		return pr, nil
	}
	if err := json.Unmarshal(data, &pr.sr); err != nil {
		return pr, err
	}
	return pr, nil
}

// apResult is one /v1/allpairs exchange as the client saw it: the parsed
// stream plus the two latencies the mode exists to measure — time to the
// first streamed row and time to the full table.
type apResult struct {
	code     int
	rows     []serve.DestResult
	done     bool
	trailer  serve.AllPairsTrailer
	errLine  string
	firstRow time.Duration
	total    time.Duration
}

// apPost issues one all-pairs request and drains the NDJSON stream. Lines
// are classified by their discriminating key: the header comes first,
// "done" marks the trailer, "error" a mid-stream failure, anything else a
// destination row.
func apPost(c *http.Client, target string, body []byte) (apResult, error) {
	var ar apResult
	t0 := time.Now()
	resp, err := c.Post(target+"/v1/allpairs", "application/json", bytes.NewReader(body))
	if err != nil {
		return ar, err
	}
	defer resp.Body.Close()
	ar.code = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		ar.total = time.Since(t0)
		return ar, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	sawHeader := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !sawHeader {
			sawHeader = true
			continue
		}
		var probe struct {
			Done  *bool   `json:"done"`
			Error *string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return ar, err
		}
		switch {
		case probe.Error != nil:
			ar.errLine = *probe.Error
		case probe.Done != nil:
			if err := json.Unmarshal(line, &ar.trailer); err != nil {
				return ar, err
			}
			ar.done = ar.trailer.Done
		default:
			var dr serve.DestResult
			if err := json.Unmarshal(line, &dr); err != nil {
				return ar, err
			}
			if len(ar.rows) == 0 {
				ar.firstRow = time.Since(t0)
			}
			ar.rows = append(ar.rows, dr)
		}
	}
	if err := sc.Err(); err != nil {
		return ar, err
	}
	ar.total = time.Since(t0)
	return ar, nil
}

// verifyTable checks a streamed all-pairs table: one row per destination
// in ascending order, each verified like a solve response.
func verifyTable(g *graph.Graph, rows []serve.DestResult, reference func(int) (*graph.Result, error)) error {
	if len(rows) != g.N {
		return fmt.Errorf("%d rows for n=%d", len(rows), g.N)
	}
	dests := make([]int, g.N)
	for d := range dests {
		dests[d] = d
	}
	return verifyResponse(g, &serve.SolveResponse{Results: rows}, dests, reference)
}

// verifyResponse checks distances against Bellman-Ford and certifies the
// returned next-hop pointers by walking them.
func verifyResponse(g *graph.Graph, sr *serve.SolveResponse, dests []int, reference func(int) (*graph.Result, error)) error {
	if len(sr.Results) != len(dests) {
		return fmt.Errorf("%d results for %d dests", len(sr.Results), len(dests))
	}
	for k, dr := range sr.Results {
		if dr.Dest != dests[k] {
			return fmt.Errorf("result %d is for dest %d, want %d", k, dr.Dest, dests[k])
		}
		want, err := reference(dr.Dest)
		if err != nil {
			return err
		}
		res := graph.Result{Dest: dr.Dest, Dist: make([]int64, g.N), Next: dr.Next, Iterations: dr.Iterations}
		for i, d := range dr.Dist {
			if d < 0 {
				res.Dist[i] = graph.NoEdge
			} else {
				res.Dist[i] = d
			}
		}
		if !graph.SameDistances(&res, want) {
			return fmt.Errorf("dest %d: distances diverge from Bellman-Ford", dr.Dest)
		}
		if err := graph.CheckResult(g, &res); err != nil {
			return fmt.Errorf("dest %d: %v", dr.Dest, err)
		}
	}
	return nil
}
