package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppamcp/internal/serve"
)

// syncBuffer lets the daemon goroutine and the test share the output log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startBackends boots n real in-process ppaserved services and returns
// their base URLs.
func startBackends(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		svc := serve.New(serve.Config{Workers: 2, MaxVertices: 64})
		ts := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
		})
		urls[i] = ts.URL
	}
	return urls
}

// TestRouterDaemonServesAndDrains boots the real pparouter daemon in
// front of two real backends, solves through it twice (miss then
// front-door hit), checks /healthz and /metrics, then delivers the
// shutdown signal and expects a clean drain.
func TestRouterDaemonServesAndDrains(t *testing.T) {
	backends := startBackends(t, 2)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-backends", strings.Join(backends, ","),
			"-health-interval", "100ms",
		}, out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v\noutput:\n%s", err, out)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d, body %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), `"healthy_backends":2`) {
		t.Errorf("healthz body %s, want 2 healthy backends", data)
	}

	const body = `{"gen":{"gen":"connected","n":12,"seed":5},"dests":[0,7]}`
	solve := func() (*http.Response, serve.SolveResponse) {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status = %d, body %s", resp.StatusCode, data)
		}
		var sr serve.SolveResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatalf("solve response: %v", err)
		}
		return resp, sr
	}
	first, sr := solve()
	if sr.N != 12 || len(sr.Results) != 2 {
		t.Fatalf("solve response n=%d results=%d, want n=12 results=2", sr.N, len(sr.Results))
	}
	if src := first.Header.Get("X-Ppa-Cache"); src != "miss" {
		t.Errorf("first solve cache = %q, want miss", src)
	}
	second, _ := solve()
	if src := second.Header.Get("X-Ppa-Cache"); src != "hit" {
		t.Errorf("second solve cache = %q, want hit", src)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pparouter_ring_size 2", "pparouter_cache_hits_total 1"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel() // what SIGINT/SIGTERM does in main
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\noutput:\n%s", err, out)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain\noutput:\n%s", out)
	}
	log := out.String()
	for _, want := range []string{"pparouter listening on", "pparouter: draining", "pparouter: drained"} {
		if !strings.Contains(log, want) {
			t.Errorf("output missing %q:\n%s", want, log)
		}
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after drain")
	}
}

func TestRouterDaemonRequiresBackends(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, &buf, nil)
	if err == nil || !strings.Contains(err.Error(), "-backends") {
		t.Fatalf("run without -backends returned %v, want an error naming the flag", err)
	}
}

func TestRouterDaemonBadFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-vnodes", "not-a-number"}, &buf, nil)
	if err == nil {
		t.Fatal("run accepted a malformed flag")
	}
}
