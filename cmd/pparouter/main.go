// Command pparouter is the fleet front door: a consistent-hash router
// that spreads solve traffic across N ppaserved backends while keeping
// it graph-affine (identical graphs land on the backend already holding
// a warm session), with a front-door result cache, single-flight miss
// collapse, active health checking, and bounded failover (see
// internal/router).
//
// Endpoints:
//
//	POST /v1/solve  (forwarded; same wire format as ppaserved)
//	GET  /healthz   (router + fleet health, JSON)
//	GET  /metrics   (Prometheus text format)
//
// Example:
//
//	pparouter -addr :8080 -backends http://10.0.0.1:8081,http://10.0.0.2:8081
//
// SIGINT/SIGTERM trigger a graceful drain: new work is refused with 503,
// in-flight forwards complete, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ppamcp/internal/router"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "pparouter:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (then drains)
// or the listener fails. When ready is non-nil the bound address is sent
// on it once the server is accepting — the hook the tests use to talk to
// an ephemeral-port instance.
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("pparouter", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8080", "listen address")
	backends := fs.String("backends", "", "comma-separated ppaserved base URLs (required)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "active health-check period")
	healthTimeout := fs.Duration("health-timeout", time.Second, "per-probe timeout")
	evictAfter := fs.Int("evict-after", 2, "consecutive probe failures that evict a backend")
	retryBudget := fs.Int("retry-budget", 2, "additional backends tried after the primary fails")
	cacheEntries := fs.Int("cache-entries", 4096, "front-door result cache entries (negative disables)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "front-door result cache byte bound")
	maxN := fs.Int("max-n", 512, "largest accepted graph (vertices)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := fs.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if strings.TrimSpace(*backends) == "" {
		return fmt.Errorf("-backends is required (comma-separated ppaserved URLs)")
	}

	rt, err := router.New(router.Config{
		Backends:       strings.Split(*backends, ","),
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		EvictAfter:     *evictAfter,
		RetryBudget:    *retryBudget,
		CacheEntries:   *cacheEntries,
		CacheBytes:     *cacheBytes,
		MaxVertices:    *maxN,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(out, "pparouter listening on %s (backends=%d vnodes=%d cache=%d retry-budget=%d)\n",
		ln.Addr(), len(strings.Split(*backends, ",")), *vnodes, *cacheEntries, *retryBudget)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(out, "pparouter: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http drain: %w", err)
	}
	if err := rt.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("router drain: %w", err)
	}
	fmt.Fprintln(out, "pparouter: drained")
	return nil
}
