// Command benchtab regenerates every experiment table of the reproduction
// (E1-E5 in DESIGN.md) and prints them in the format recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	benchtab                        # all experiments
//	benchtab -only E3               # one experiment (regexp over ids)
//	benchtab -only ResolveSweep/k=1 # just the matching wall-clock rows
//	benchtab -json                  # E1-E6 cycle tables + wall-clock benchmarks as JSON
//
// -only is a regexp matched against both experiment ids (E1..E9) and
// wall-clock benchmark row names; non-matching benchmarks are never run,
// so a narrow pattern is a cheap smoke test (CI runs one under -race).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"testing"

	"ppamcp/internal/bench"
	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppclang"
)

// wallClock is one simulator host-performance measurement: the same
// workload as the repo's BenchmarkSolveWallClock (n=64 random connected
// graph, density 0.3, seed 5, destination 1), timed with
// testing.Benchmark so the numbers land in a machine-readable report.
type wallClock struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	N           int     `json:"iterations"`
	MsPerOp     float64 `json:"msPerOp"`
}

// report is the -json document: the abstract cycle tables (host-
// independent, golden-pinned) plus the simulator's own wall-clock cost
// (host-dependent, tracked across PRs in BENCH_*.json snapshots).
type report struct {
	Tables    []bench.Table `json:"tables"`
	WallClock []wallClock   `json:"wallClock"`
}

// runWallClock times the host-performance rows; a non-nil only regexp
// skips (never runs) every row whose name it does not match.
func runWallClock(only *regexp.Regexp) []wallClock {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	var out []wallClock
	add := func(name string, fn func(b *testing.B)) {
		if only != nil && !only.MatchString(name) {
			return
		}
		r := testing.Benchmark(fn)
		out = append(out, wallClock{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		add(fmt.Sprintf("SolveWallClock/n=64/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(g, 1, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	session := func(name string, opt core.Options) {
		add(name, func(b *testing.B) {
			s, err := core.NewSession(g, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	session("SolveWallClock/n=64/session", core.Options{})
	// Interpretive-kernel ablation: the gap to n=64/session is what the
	// fused bit-sliced reduction kernels buy.
	session("SolveWallClock/n=64/session-reference", core.Options{ReferenceKernels: true})
	// Virtualization curve: the same n=64 problem block-mapped onto
	// shrinking physical arrays (k = n/m logical PEs per physical PE;
	// phys=64 is k=1, sanity-equal to the direct session). Tracks the
	// host cost of the packed virtualization engine across PRs.
	for _, phys := range []int{64, 32, 16, 8} {
		session(fmt.Sprintf("SolveWallClock/n=64/session-virt-m=%d", phys),
			core.Options{PhysicalSide: phys})
	}
	// All-pairs batching curve: one warm SolveSweep over all n
	// destinations vs the same table solved one warm destination at a
	// time. The gap is what the sweep's incremental per-destination init
	// and shadow-charged broadcasts buy on the host.
	for _, n := range []int{16, 32, 64} {
		n := n
		ga := graph.GenRandomConnected(n, 0.3, 9, 5)
		dests := make([]int, n)
		for d := range dests {
			dests[d] = d
		}
		add(fmt.Sprintf("AllPairsWallClock/n=%d/per-destination", n), func(b *testing.B) {
			s, err := core.NewSession(ga, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, d := range dests {
					if _, err := s.Solve(d); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		add(fmt.Sprintf("AllPairsWallClock/n=%d/sweep", n), func(b *testing.B) {
			s, err := core.NewSession(ga, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := s.SolveSweep(context.Background(), dests, func(*core.Result) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Incremental re-solve curve: k weight edits applied to a live session
	// (O(k) delta DMA + warm-start re-solve) vs the same edits replayed
	// from scratch (full weight reload + cold solve). The warm/cold gap at
	// small k is the whole point of Session.Update/Resolve; at k = n the
	// churn is global and the two converge.
	for _, k := range []int{1, 4, 16, 64} {
		k := k
		gd := graph.GenRandomConnected(64, 0.3, 9, 5)
		var edges [][2]int
		for i := 0; i < gd.N; i++ {
			for j := 0; j < gd.N; j++ {
				if i != j && gd.HasEdge(i, j) {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		// nextBatch rotates weight rewrites over the edge list; w' =
		// (w mod 9) + 1 always differs from w, so every edit is effective
		// and the graphs stay step-for-step identical across the two rows.
		nextBatch := func(g *graph.Graph, tick int, ups []graph.WeightUpdate) []graph.WeightUpdate {
			ups = ups[:0]
			for e := 0; e < k; e++ {
				uv := edges[(tick*k+e)*7%len(edges)]
				w := g.At(uv[0], uv[1])
				ups = append(ups, graph.WeightUpdate{U: uv[0], V: uv[1], W: (w % 9) + 1})
			}
			return ups
		}
		add(fmt.Sprintf("UpdateResolve/n=64/k=%d/warm", k), func(b *testing.B) {
			s, err := core.NewSession(gd.Clone(), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Resolve(context.Background(), 1); err != nil {
				b.Fatal(err)
			}
			ups := make([]graph.WeightUpdate, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ups = nextBatch(s.Graph(), i, ups)
				if err := s.Update(ups); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Resolve(context.Background(), 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(fmt.Sprintf("UpdateResolve/n=64/k=%d/cold", k), func(b *testing.B) {
			gc := gd.Clone()
			s, err := core.NewSession(gc, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Solve(1); err != nil {
				b.Fatal(err)
			}
			ups := make([]graph.WeightUpdate, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ups = nextBatch(gc, i, ups)
				if err := gc.Apply(ups); err != nil {
					b.Fatal(err)
				}
				if err := s.Reload(gc); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solve(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Warm incremental all-pairs curve: k weight edits followed by a full
	// n-destination re-solve. The warm row keeps one live session whose
	// retained per-destination solutions seed each row's DP (and whose
	// skip-converged certificate emits untouched rows without running it);
	// the cold row replays the same edits as a weight reload plus a
	// from-scratch SolveSweep. The warm/cold gap at small k is the whole
	// point of Session.ResolveSweep.
	for _, k := range []int{1, 4, 16, 64} {
		k := k
		gd := graph.GenRandomConnected(64, 0.3, 9, 5)
		allDests := make([]int, gd.N)
		for d := range allDests {
			allDests[d] = d
		}
		var edges [][2]int
		for i := 0; i < gd.N; i++ {
			for j := 0; j < gd.N; j++ {
				if i != j && gd.HasEdge(i, j) {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		nextBatch := func(g *graph.Graph, tick int, ups []graph.WeightUpdate) []graph.WeightUpdate {
			ups = ups[:0]
			for e := 0; e < k; e++ {
				uv := edges[(tick*k+e)*7%len(edges)]
				w := g.At(uv[0], uv[1])
				ups = append(ups, graph.WeightUpdate{U: uv[0], V: uv[1], W: (w % 9) + 1})
			}
			return ups
		}
		discard := func(*core.Result) error { return nil }
		add(fmt.Sprintf("ResolveSweep/n=64/k=%d/warm", k), func(b *testing.B) {
			s, err := core.NewSession(gd.Clone(), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			// Prime every destination's retained solution.
			if err := s.ResolveSweep(context.Background(), allDests, discard); err != nil {
				b.Fatal(err)
			}
			ups := make([]graph.WeightUpdate, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ups = nextBatch(s.Graph(), i, ups)
				if err := s.Update(ups); err != nil {
					b.Fatal(err)
				}
				if err := s.ResolveSweep(context.Background(), allDests, discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		add(fmt.Sprintf("ResolveSweep/n=64/k=%d/cold", k), func(b *testing.B) {
			gc := gd.Clone()
			s, err := core.NewSession(gc, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ups := make([]graph.WeightUpdate, 0, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ups = nextBatch(gc, i, ups)
				if err := gc.Apply(ups); err != nil {
					b.Fatal(err)
				}
				if err := s.Reload(gc); err != nil {
					b.Fatal(err)
				}
				if err := s.SolveSweep(context.Background(), allDests, discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// PPC execution curve: the paper's listing run end to end through the
	// language stack. bytecode vs reference is the flat-opcode compiler's
	// win over the tree-walking oracle (identical metrics either way).
	gp := graph.GenRandomConnected(16, 0.3, 9, 5)
	h := gp.BitsNeeded()
	ppc := func(name string, opts ...ppclang.Option) {
		add(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.RunPaperPPC(gp, 1, h, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	ppc("PPCPaper/n=16/bytecode")
	ppc("PPCPaper/n=16/reference", ppclang.WithReference(true))
	return out
}

func main() {
	only := flag.String("only", "", "regexp over experiment ids (E1..E9) and wall-clock row names; matching rows run, everything else is skipped")
	format := flag.String("format", "text", "output format: text|markdown")
	jsonOut := flag.Bool("json", false, "emit E1-E6 tables and wall-clock benchmarks as JSON")
	flag.Parse()

	var re *regexp.Regexp
	if *only != "" {
		var err error
		if re, err = regexp.Compile(*only); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: bad -only regexp: %v\n", err)
			os.Exit(1)
		}
	}

	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	runners := map[string]func() bench.Table{
		"E1": bench.RunE1,
		"E2": bench.RunE2,
		"E3": bench.RunE3,
		"E4": bench.RunE4,
		"E5": bench.RunE5,
		"E6": bench.RunE6,
		"E7": bench.RunE7,
		"E8": bench.RunE8,
		"E9": bench.RunE9,
	}
	match := func(id string) bool { return re == nil || re.MatchString(id) }

	if *jsonOut {
		rep := report{}
		for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6"} {
			if match(id) {
				rep.Tables = append(rep.Tables, runners[id]())
			}
		}
		rep.WallClock = runWallClock(re)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}

	render := func(t bench.Table) string {
		if *format == "markdown" {
			return t.Markdown()
		}
		return t.Format()
	}
	if re == nil {
		for _, t := range bench.RunAll() {
			fmt.Println(render(t))
		}
		return
	}
	ran := 0
	for _, id := range ids {
		if match(id) {
			fmt.Println(render(runners[id]()))
			ran++
		}
	}
	for _, wc := range runWallClock(re) {
		fmt.Printf("%-44s %12d ns/op %8.3f ms/op %8d allocs/op\n",
			wc.Name, wc.NsPerOp, wc.MsPerOp, wc.AllocsPerOp)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtab: -only %q matched no experiment or wall-clock row\n", *only)
		os.Exit(1)
	}
}
