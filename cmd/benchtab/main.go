// Command benchtab regenerates every experiment table of the reproduction
// (E1-E5 in DESIGN.md) and prints them in the format recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	benchtab           # all experiments
//	benchtab -only E3  # one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"ppamcp/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment: E1..E9")
	format := flag.String("format", "text", "output format: text|markdown")
	flag.Parse()

	render := func(t bench.Table) string {
		if *format == "markdown" {
			return t.Markdown()
		}
		return t.Format()
	}

	runners := map[string]func() bench.Table{
		"E1": bench.RunE1,
		"E2": bench.RunE2,
		"E3": bench.RunE3,
		"E4": bench.RunE4,
		"E5": bench.RunE5,
		"E6": bench.RunE6,
		"E7": bench.RunE7,
		"E8": bench.RunE8,
		"E9": bench.RunE9,
	}
	if *only != "" {
		r, ok := runners[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q (want E1..E9)\n", *only)
			os.Exit(1)
		}
		fmt.Println(render(r()))
		return
	}
	for _, t := range bench.RunAll() {
		fmt.Println(render(t))
	}
}
